"""Deploying FTM pairs and managing replica recovery.

:class:`FTMPair` deploys one FTM across two replicas in parallel (the
paper measures per-replica deployment time because both sides deploy
concurrently), logs the active configuration in stable storage, and —
when recovery is enabled — restarts a crashed replica and reintegrates it
in the configuration recorded there (Sec. 5.3, recovery of adaptation).
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.components.spec import AssemblySpec
from repro.ftm.catalog import check_ftm_name, ftm_assembly
from repro.ftm.replica import Replica
from repro.kernel.node import Node
from repro.kernel.sim import Timeout, all_of


class FTMPair:
    """A fault-tolerance mechanism deployed over two replicas."""

    def __init__(
        self,
        world,
        ftm: str,
        nodes: List[Node],
        app: str = "counter",
        assertion: str = "always-true",
        composite_name: str = "ftm",
        fd_period: float = 20.0,
        fd_timeout: float = 60.0,
    ):
        if len(nodes) != 2:
            raise ValueError(f"an FTM pair needs exactly 2 nodes, got {len(nodes)}")
        check_ftm_name(ftm)
        self.world = world
        self.ftm = ftm
        self.app = app
        self.assertion = assertion
        self.composite_name = composite_name
        self.fd_period = fd_period
        self.fd_timeout = fd_timeout
        self.replicas = [Replica(world, node, composite_name) for node in nodes]
        self.recovery_enabled = False
        self.restart_delay = 200.0
        self.reintegrations = 0

    # -- blueprints --------------------------------------------------------------------

    def spec_for(
        self,
        replica_index: int,
        ftm: Optional[str] = None,
        app: Optional[str] = None,
    ) -> AssemblySpec:
        """The blueprint of one replica side, honouring its *current* role."""
        replica = self.replicas[replica_index]
        peer = self.replicas[1 - replica_index].node.name
        role = replica.role()
        if role in ("?", "gone"):
            role = "master" if replica_index == 0 else "slave"
        return ftm_assembly(
            ftm or self.ftm,
            role=role,
            peer=peer,
            app=app or self.app,
            assertion=self.assertion,
            composite=self.composite_name,
            fd_period=self.fd_period,
            fd_timeout=self.fd_timeout,
        )

    # -- deployment ----------------------------------------------------------------------

    def deploy(self) -> Generator:
        """Deploy both replicas in parallel; log the initial configuration."""
        processes = [
            self.world.sim.spawn(
                replica.deploy(self.spec_for(index)),
                name=f"deploy-{replica.node.name}",
            )
            for index, replica in enumerate(self.replicas)
        ]
        yield from all_of(self.world.sim, processes)
        for replica in self.replicas:
            replica.deployed_ftm = self.ftm
        self._log_configuration(self.ftm)
        self.world.trace.record("ftm", "deployed", ftm=self.ftm)
        return self

    def _log_configuration(self, ftm: str) -> None:
        self.world.storage.append(
            f"ftm-config:{self.composite_name}",
            {"ftm": ftm, "app": self.app, "assertion": self.assertion},
        )

    def logged_configuration(self) -> Optional[dict]:
        """The configuration currently recorded on stable storage."""
        entry = self.world.storage.last(f"ftm-config:{self.composite_name}")
        return entry.value if entry else None

    # -- queries ------------------------------------------------------------------------------

    @property
    def master(self) -> Optional[Replica]:
        for replica in self.replicas:
            if replica.alive and replica.role() == "master":
                return replica
        return None

    @property
    def slave(self) -> Optional[Replica]:
        for replica in self.replicas:
            if replica.alive and replica.role() == "slave":
                return replica
        return None

    def node_names(self) -> List[str]:
        """The two replica node names (client target list)."""
        return [replica.node.name for replica in self.replicas]

    def replica_on(self, node_name: str) -> Replica:
        """The replica hosted on a given node."""
        for replica in self.replicas:
            if replica.node.name == node_name:
                return replica
        raise KeyError(f"no replica on node {node_name!r}")

    # -- recovery ---------------------------------------------------------------------------------

    def enable_recovery(self, restart_delay: float = 200.0) -> None:
        """Restart + reintegrate crashed replicas automatically."""
        self.recovery_enabled = True
        self.restart_delay = restart_delay
        for replica in self.replicas:
            replica.node.on_crash(self._on_replica_crash)

    def _on_replica_crash(self, node) -> None:
        if not self.recovery_enabled:
            return
        replica = self.replica_on(node.name)
        replica.on_crash_cleanup()
        self.world.sim.schedule(self.restart_delay, self._begin_reintegration, replica)

    def _begin_reintegration(self, replica: Replica) -> None:
        replica.node.restart()
        self.world.sim.spawn(
            self._reintegrate(replica), name=f"reintegrate-{replica.node.name}"
        )

    def _reintegrate(self, replica: Replica) -> Generator:
        """Redeploy a restarted replica in the *logged* configuration.

        The survivor may have completed a transition while this node was
        down; stable storage names the configuration to come back in
        (Sec. 5.3, recovery of adaptation).  The survivor may even be
        reconfiguring *right now* — so we loop until the configuration we
        deployed is still the logged one when we finish, and a
        reconciliation watch (see :meth:`_post_recovery_watch`) covers the
        residual window.
        """
        survivor = self._surviving_peer(replica)
        index = self.replicas.index(replica)
        peer = self.replicas[1 - index].node.name
        from repro.ftm.catalog import ftm_assembly as build

        while True:
            config = self.logged_configuration() or {
                "ftm": self.ftm, "app": self.app, "assertion": self.assertion,
            }
            ftm = config["ftm"]
            spec = build(
                ftm,
                role="slave",
                peer=peer,
                app=config.get("app", self.app),
                assertion=config.get("assertion", self.assertion),
                composite=self.composite_name,
                fd_period=self.fd_period,
                fd_timeout=self.fd_timeout,
            )
            if self.composite_name in replica.runtime.composites:
                yield from replica.runtime.destroy_composite(self.composite_name)
                replica.composite = None
            yield from replica.deploy(spec)
            replica.deployed_ftm = ftm
            latest = self.logged_configuration()
            if latest is None or latest == config:
                break
            # the configuration moved while we were deploying: go again

        if survivor is not None and survivor.alive:
            # state transfer: bring the fresh slave up to date, then tell the
            # survivor (and its failure detector) that the peer is back
            try:
                state = yield from survivor.control("get_state")
                yield from replica.control("put_state", state)
            except Exception:  # noqa: BLE001 - app without state access
                pass
            yield from survivor.control("peer_recovered", replica.node.name)
            yield from survivor.composite.call("fd", "reset")
        self.reintegrations += 1
        self.world.trace.record(
            "ftm", "reintegrated", node=replica.node.name, ftm=ftm
        )
        # residual race: the survivor might log a new configuration just
        # after our final check — reconcile shortly after
        self.world.sim.spawn(
            self._post_recovery_watch(replica),
            name=f"reconcile-{replica.node.name}",
        )

    def _post_recovery_watch(self, replica: Replica) -> Generator:
        """Re-check (a few times) that the replica runs the logged config."""
        for _attempt in range(3):
            yield Timeout(1_500.0)
            if not replica.alive:
                return
            config = self.logged_configuration()
            if config is None or replica.deployed_ftm == config["ftm"]:
                continue
            self.world.trace.record(
                "ftm",
                "reconcile",
                node=replica.node.name,
                deployed=replica.deployed_ftm,
                logged=config["ftm"],
            )
            yield from self._reintegrate(replica)
            return

    def _surviving_peer(self, replica: Replica) -> Optional[Replica]:
        for other in self.replicas:
            if other is not replica and other.alive:
                return other
        return None


def deploy_ftm_pair(
    world,
    ftm: str,
    node_names: List[str],
    app: str = "counter",
    assertion: str = "always-true",
    composite_name: str = "ftm",
    **kwargs,
) -> Generator:
    """Convenience: build nodes' replicas and deploy (generator).

    Usage::

        pair = yield from deploy_ftm_pair(world, "pbr", ["alpha", "beta"])
    """
    nodes = [world.cluster.node(name) for name in node_names]
    pair = FTMPair(world, ftm, nodes, app=app, assertion=assertion,
                   composite_name=composite_name, **kwargs)
    yield from pair.deploy()
    return pair
