"""Component-based FTMs on the simulated platform (paper Sec. 4.4–5).

Public surface::

    from repro.ftm import FTMPair, Client, ftm_assembly, FTM_NAMES

    pair = yield from deploy_ftm_pair(world, "pbr", ["alpha", "beta"])
    client = Client(world, client_node, "c1", pair.node_names())
    reply = yield from client.request(("add", 5))
"""

from repro.ftm.broadcast import AtomicBroadcast, Delivery, ReplicatedStateMachine
from repro.ftm.catalog import (
    FTM_NAMES,
    PATTERN_CLASSES,
    VARIABLE_FEATURES,
    check_ftm_name,
    ftm_assembly,
    variable_feature_distance,
)
from repro.ftm.client import Client
from repro.ftm.errors import (
    FTMError,
    NotMaster,
    PeerUnavailable,
    UnknownFTM,
    UnmaskedFault,
)
from repro.ftm.extensions import (
    AMORTIZED_PBR,
    AmortizedPbrSyncAfter,
    amortized_pbr_assembly,
    register_amortized_pbr,
)
from repro.ftm.factory import FTMPair, deploy_ftm_pair
from repro.ftm.group import (
    FTMGroup,
    GroupFailureDetector,
    GroupLfrSyncAfter,
    GroupLfrSyncBefore,
    GroupProtocol,
    group_assembly,
)
from repro.ftm.failure_detector import HeartbeatFailureDetector
from repro.ftm.messages import ClientReply, ClientRequest, PeerEnvelope, estimate_size
from repro.ftm.proceed import PlainProceed, RedundantProceed
from repro.ftm.protocol import FTProtocol
from repro.ftm.replica import Replica
from repro.ftm.reply_log import ReplyLog
from repro.ftm.server_component import AppServer
from repro.ftm.sync_after import (
    AssertLfrSyncAfter,
    AssertPbrSyncAfter,
    LfrSyncAfter,
    PbrSyncAfter,
)
from repro.ftm.sync_before import LfrSyncBefore, PbrSyncBefore

__all__ = [
    "AtomicBroadcast",
    "Delivery",
    "ReplicatedStateMachine",
    "FTM_NAMES",
    "PATTERN_CLASSES",
    "VARIABLE_FEATURES",
    "check_ftm_name",
    "ftm_assembly",
    "variable_feature_distance",
    "Client",
    "FTMError",
    "NotMaster",
    "PeerUnavailable",
    "UnknownFTM",
    "UnmaskedFault",
    "AMORTIZED_PBR",
    "AmortizedPbrSyncAfter",
    "amortized_pbr_assembly",
    "register_amortized_pbr",
    "FTMPair",
    "deploy_ftm_pair",
    "FTMGroup",
    "GroupFailureDetector",
    "GroupLfrSyncAfter",
    "GroupLfrSyncBefore",
    "GroupProtocol",
    "group_assembly",
    "HeartbeatFailureDetector",
    "ClientReply",
    "ClientRequest",
    "PeerEnvelope",
    "estimate_size",
    "PlainProceed",
    "RedundantProceed",
    "FTProtocol",
    "Replica",
    "ReplyLog",
    "AppServer",
    "AssertLfrSyncAfter",
    "AssertPbrSyncAfter",
    "LfrSyncAfter",
    "PbrSyncAfter",
    "LfrSyncBefore",
    "PbrSyncBefore",
]
