#!/usr/bin/env python
"""Quickstart: deploy a fault-tolerant service, survive a crash, adapt on-line.

This walks the core public API in five steps:

1. build a simulated platform (:class:`repro.kernel.World`);
2. deploy Primary-Backup Replication over two replicas;
3. serve client requests and survive a crash of the primary;
4. execute a fine-grained on-line transition PBR → LFR (only the two
   variable-feature components are replaced; application state, the reply
   log and client sessions survive);
5. keep serving — same service, new fault-tolerance mechanism.

Run:  python examples/quickstart.py
"""

from repro.core import AdaptationEngine
from repro.ftm import Client, deploy_ftm_pair
from repro.kernel import Timeout, World


def main() -> None:
    # 1. a simulated platform: two replica hosts and a client host
    world = World(seed=42)
    world.add_nodes(["alpha", "beta", "client"])

    # 2. deploy PBR over alpha (primary) and beta (backup)
    def deploy():
        pair = yield from deploy_ftm_pair(world, "pbr", ["alpha", "beta"])
        return pair

    pair = world.run_process(deploy(), name="deploy")
    pair.enable_recovery(restart_delay=300.0)
    print(f"[{world.now:8.0f} ms] deployed {pair.ftm!r}: "
          f"master={pair.master.node.name}, slave={pair.slave.node.name}")

    client = Client(world, world.cluster.node("client"), "alice", pair.node_names())
    engine = AdaptationEngine(world, pair)

    def scenario():
        # 3. normal service ...
        for amount in (10, 20, 30):
            reply = yield from client.request(("add", amount))
            print(f"[{world.now:8.0f} ms] add {amount:3d} -> {reply.value} "
                  f"(served by {reply.served_by})")

        # ... then the primary crashes mid-mission
        print(f"[{world.now:8.0f} ms] *** crashing the primary ({pair.master.node.name}) ***")
        world.cluster.node("alpha").crash()

        reply = yield from client.request(("add", 40))
        print(f"[{world.now:8.0f} ms] add  40 -> {reply.value} "
              f"(served by {reply.served_by} after failover — no state lost)")

        # wait for alpha to restart and reintegrate as the new backup
        yield Timeout(6_000.0)
        print(f"[{world.now:8.0f} ms] alpha reintegrated as "
              f"{pair.replica_on('alpha').role()!r}")

        # 4. adapt on-line: bandwidth got scarce, switch to LFR
        print(f"[{world.now:8.0f} ms] executing differential transition "
              f"{pair.ftm} -> lfr ...")
        report = yield from engine.transition("lfr")
        replica = report.replicas[0]
        print(f"[{world.now:8.0f} ms] transition done in "
              f"{report.per_replica_ms:.0f} ms/replica "
              f"({report.component_count} components replaced; "
              f"deploy {replica.deploy_ms:.0f} + script {replica.script_ms:.0f} "
              f"+ cleanup {replica.remove_ms:.0f} ms)")

        # 5. same service, new mechanism — state and sessions intact
        reply = yield from client.request(("get",))
        print(f"[{world.now:8.0f} ms] get     -> {reply.value} under {pair.ftm!r}")
        assert reply.value == 100

    world.run_process(scenario(), name="scenario")
    print("\nquickstart OK")


if __name__ == "__main__":
    main()
