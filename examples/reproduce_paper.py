#!/usr/bin/env python
"""Regenerate every table and figure of the paper in one run.

Prints, paper-style:

* Table 1  — (FT, A, R) parameters of the FTMs
* Table 2  — the Before/Proceed/After execution scheme
* Table 3  — deployment vs differential-transition times (6×6 matrix)
* Figure 2 — the FTM transition graph
* Figure 4 — development effort (incremental-SLOC proxy)
* Figure 5 — SLOC per pattern element
* Figure 8 — the derived transition-scenario graph
* Figure 9 — transition-phase breakdown
* Sec. 6.2 — agile vs preprogrammed adaptation
* Sec. 5.3 — distributed-consistency fault-injection summary

Runs the Table 3 / Figure 9 simulations with ``--runs N`` repetitions
per cell (default 1 for a quick look; the benchmarks use 3; the paper
averaged 100).
"""

import argparse
import sys

from repro.eval import (
    agility,
    consistency_eval,
    figure2,
    figure4,
    figure5,
    figure8,
    figure9,
    table1,
    table2,
    table3,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=1,
                        help="seeded repetitions per simulated cell")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the simulated artifacts")
    args = parser.parse_args(argv)

    failures = []

    def section(title, data, rendered, problems):
        print("\n" + rendered + "\n")
        if problems:
            failures.extend(f"{title}: {p}" for p in problems)
            print(f"  !! {len(problems)} claim(s) violated")
        else:
            print(f"  -> {title}: all claims reproduce")

    d1 = table1.generate()
    fidelity1 = table1.fidelity(d1)
    section(
        "Table 1", d1, table1.render(d1),
        [] if fidelity1["matches"] >= 30 else ["fidelity below 30/32"],
    )

    d2 = table2.generate()
    section("Table 2", d2, table2.render(d2), [])

    print("\nsimulating Table 3 (36 deployments + 90 transitions)...")
    d3 = table3.generate(runs=args.runs, jobs=args.jobs)
    section("Table 3", d3, table3.render(d3), table3.shape_checks(d3))

    df2 = figure2.generate()
    section("Figure 2", df2, figure2.render(df2), figure2.coverage(df2))

    df4 = figure4.generate()
    section("Figure 4", df4, figure4.render(df4), figure4.shape_checks(df4))

    df5 = figure5.generate()
    section("Figure 5", df5, figure5.render(df5), figure5.shape_checks(df5))

    df8 = figure8.generate()
    section("Figure 8", df8, figure8.render(df8), figure8.fidelity(df8))

    df9 = figure9.generate(runs=args.runs, jobs=args.jobs)
    section("Figure 9", df9, figure9.render(df9), figure9.shape_checks(df9))

    da = agility.generate()
    section("Sec 6.2 agility", da, agility.render(da), agility.shape_checks(da))

    dc = consistency_eval.generate(runs=max(2, args.runs), jobs=args.jobs)
    section(
        "Sec 5.3 consistency", dc, consistency_eval.render(dc),
        consistency_eval.shape_checks(dc),
    )

    print("\n" + "=" * 70)
    if failures:
        print(f"{len(failures)} reproduction claim(s) FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("every table and figure reproduces the paper's shape")
    return 0


if __name__ == "__main__":
    sys.exit(main())
