#!/usr/bin/env python
"""A long-lived space system adapting its fault tolerance across mission phases.

The paper motivates agile adaptation with "long-lived space systems
(satellites and deep-space probes)": the fault model changes over a
mission (launch, cruise, orbit insertion, aging hardware), the FTMs that
will be needed years in cannot all be foreseen at launch, and ground
control (the System Manager) stays in the loop.

The scenario below runs the full closed loop on the simulated platform:

* **cruise** — crash faults only, ample resources: PBR protects the
  payload data handler;
* **radiation season** — the error observer sees TR comparison faults
  would be needed (ground announces hardware aging): *proactive*
  mandatory transition PBR → PBR⊕TR;
* **downlink degradation** — the bandwidth probe fires: mandatory
  transition to LFR⊕TR (checkpointing is unaffordable);
* **orbit-insertion (critical phase)** — ground proactively hardens to
  A&Duplex before the burn;
* **after the burn** — going back is merely *possible*; ground approves it;
* **year 3: field update** — a brand-new FTM, developed on the ground
  after launch, is uplinked into the repository and deployed on-line —
  the agility the preprogrammed alternative cannot offer.
"""

from repro.core import (
    AdaptationEngine,
    MonitoringEngine,
    ResilienceManager,
    SystemManager,
)
from repro.core.transition_graph import _ctx
from repro.ftm import Client, deploy_ftm_pair, ftm_assembly
from repro.kernel import Timeout, World


def main() -> None:
    world = World(seed=7)
    world.add_nodes(["obc-a", "obc-b", "ground"])  # two on-board computers

    def deploy():
        pair = yield from deploy_ftm_pair(
            world, "pbr", ["obc-a", "obc-b"], assertion="counter-range"
        )
        return pair

    pair = world.run_process(deploy(), name="deploy")
    pair.enable_recovery(restart_delay=500.0)

    engine = AdaptationEngine(world, pair)
    monitoring = MonitoringEngine(world, ["obc-a", "obc-b"])
    ground_control = SystemManager()  # humans approve possible transitions
    resilience = ResilienceManager(
        world, engine, monitoring, _ctx(), system_manager=ground_control
    )
    monitoring.start()
    resilience.start()

    telemetry = Client(world, world.cluster.node("ground"), "telemetry",
                       pair.node_names(), timeout=2_000.0)

    def phase(title):
        print(f"\n[{world.now:9.0f} ms] === {title} === (FTM: {pair.ftm})")

    def mission():
        phase("cruise: crash faults only")
        for sample in range(3):
            reply = yield from telemetry.request(("add", 1))
            assert reply.ok

        phase("radiation season: ground reports hardware aging (FT change)")
        resilience.notify_event("hardware-aging")   # proactive!
        yield Timeout(3_000.0)
        print(f"[{world.now:9.0f} ms] proactive transition done -> {pair.ftm}")
        assert pair.ftm == "pbr+tr"

        # a real bit flip hits the payload computer: TR masks it
        world.faults.arm_transient("obc-a", probability=1.0, budget=1)
        reply = yield from telemetry.request(("add", 1))
        assert reply.ok and reply.value == 4
        print(f"[{world.now:9.0f} ms] transient fault masked by TR "
              f"(value still correct: {reply.value})")

        phase("downlink degradation: the bandwidth probe fires (R change)")
        world.network.set_link("obc-a", "obc-b", bandwidth=500.0)
        yield Timeout(4_000.0)
        print(f"[{world.now:9.0f} ms] mandatory transition done -> {pair.ftm}")
        assert pair.ftm == "lfr+tr"

        phase("orbit insertion: critical phase starts (FT change, proactive)")
        resilience.notify_event("critical-phase-start")
        yield Timeout(3_000.0)
        print(f"[{world.now:9.0f} ms] hardened for the burn -> {pair.ftm}")
        assert pair.ftm in ("a+lfr", "a+pbr")

        reply = yield from telemetry.request(("add", 1))
        assert reply.ok

        phase("burn complete: downlink restored; relaxing needs ground approval")
        world.network.set_link("obc-a", "obc-b", bandwidth=12_500.0)
        yield Timeout(1_000.0)  # the bandwidth probe notices the recovery
        resilience.notify_event("critical-phase-end")
        yield Timeout(2_000.0)
        assert pair.ftm in ("a+lfr", "a+pbr")  # nothing moved automatically
        print(f"[{world.now:9.0f} ms] proposal queued for ground: "
              f"{ground_control.pending[0].source_ftm} -> "
              f"{ground_control.pending[0].target_ftm}")
        report = yield from resilience.execute_pending(approve=True)
        print(f"[{world.now:9.0f} ms] ground approved -> {pair.ftm} "
              f"({report.per_replica_ms:.0f} ms/replica)")

        phase("year 3: uplink of an FTM unknown at launch")

        def field_ftm(role, peer, app="counter", assertion="always-true",
                      composite="ftm", **kwargs):
            # ground developed a hardened PBR variant after launch; here it
            # reuses catalog bricks, but it could ship brand-new components
            return ftm_assembly("pbr+tr", role=role, peer=peer, app=app,
                                assertion=assertion, composite=composite)

        engine.repository.register_ftm("pbr-gen2", field_ftm)
        report = yield from engine.transition("pbr-gen2")
        print(f"[{world.now:9.0f} ms] field-update FTM deployed on-line in "
              f"{report.per_replica_ms:.0f} ms/replica -> {pair.ftm}")

        reply = yield from telemetry.request(("get",))
        print(f"[{world.now:9.0f} ms] payload counter intact across "
              f"{len(engine.history)} transitions: {reply.value}")
        assert reply.value == 5

    world.run_process(mission(), name="mission")
    print("\nmission complete;",
          f"{len([r for r in engine.history if r.success])} successful "
          "on-line transitions, 0 requests lost")


if __name__ == "__main__":
    main()
