#!/usr/bin/env python
"""Over-the-air software updates in a car: A-changes drive FTM adaptation.

The paper names "automotive applications regarding over-the-air software
updates" as the second target domain.  Here a vehicle's two ECUs run a
replicated driver-assistance function; OTA updates change the
*application characteristics* (the A of (FT, A, R)), and the Resilience
Manager keeps the fault-tolerance mechanism consistent:

* **v1** — deterministic, state-accessible: protected by PBR;
* **v2 (OTA)** — introduces a sensor-fusion component: the new version is
  **non-deterministic** → PBR still works (only the primary computes) but
  LFR never would; the graph records an *intra-FTM* change;
* **v3 (OTA)** — a vendor library hides the internal state: **state
  access is lost** → checkpointing is impossible, PBR is invalid... and
  with the app still non-deterministic there is **no generic solution**:
  the update is *refused* by the dependability check, exactly the kind of
  inconsistency detection Figure 1 places before any on-line adaptation;
* **v3'** — the vendor restores determinism: now LFR (which needs no
  state access) is valid, and the mandatory transition runs during the
  OTA window.
"""

from repro.core import (
    AdaptationEngine,
    MonitoringEngine,
    NoValidFTM,
    ResilienceManager,
    SystemManager,
    select_ftm,
)
from repro.core.transition_graph import _ctx, event
from repro.ftm import Client, deploy_ftm_pair
from repro.kernel import Timeout, World


def main() -> None:
    world = World(seed=11)
    world.add_nodes(["ecu-1", "ecu-2", "gateway"])

    def deploy():
        pair = yield from deploy_ftm_pair(world, "pbr", ["ecu-1", "ecu-2"])
        return pair

    pair = world.run_process(deploy(), name="deploy")
    engine = AdaptationEngine(world, pair)
    monitoring = MonitoringEngine(world, ["ecu-1", "ecu-2"])
    ota_manager = SystemManager(auto_approve=True)  # the OTA pipeline is scripted
    resilience = ResilienceManager(
        world, engine, monitoring, _ctx(), system_manager=ota_manager
    )
    monitoring.start()
    resilience.start()

    bus = Client(world, world.cluster.node("gateway"), "can-bus", pair.node_names())

    print(f"[{world.now:8.0f} ms] vehicle running v1 under {pair.ftm!r}")

    def ota_campaign():
        reply = yield from bus.request(("add", 3))
        assert reply.ok

        # ---- v2: the update makes the application non-deterministic -------
        print(f"\n[{world.now:8.0f} ms] OTA v2: application becomes "
              "non-deterministic (A change, reported by the developer)")
        resilience.notify_event("application-non-determinism")
        yield Timeout(2_000.0)
        print(f"[{world.now:8.0f} ms] still {pair.ftm!r}: PBR accepts "
              "non-determinism (intra-FTM change only)")
        assert pair.ftm == "pbr"

        # ---- v3: the vendor library hides the state -------------------------
        print(f"\n[{world.now:8.0f} ms] OTA v3 proposal: state access would "
              "be lost")
        v3_context = event("state-access-loss").apply(resilience.context)
        try:
            select_ftm(v3_context)
            verdict = "accepted"
        except NoValidFTM as exc:
            verdict = f"REFUSED: {exc}"
        print(f"[{world.now:8.0f} ms] dependability check -> "
              f"{verdict.splitlines()[0][:90]}")
        assert verdict.startswith("REFUSED")
        # the OTA pipeline holds the update back; the vehicle stays on v2

        # ---- v3': vendor fixes determinism first -----------------------------
        print(f"\n[{world.now:8.0f} ms] OTA v3': determinism restored, then "
              "state access lost — LFR becomes mandatory")
        resilience.notify_event("application-determinism")
        yield Timeout(2_000.0)
        resilience.notify_event("state-access-loss")
        yield Timeout(3_000.0)
        print(f"[{world.now:8.0f} ms] now running {pair.ftm!r} "
              "(no checkpointing needed)")
        assert pair.ftm == "lfr"

        reply = yield from bus.request(("add", 3))
        assert reply.ok and reply.value == 6
        print(f"[{world.now:8.0f} ms] service uninterrupted across the "
              f"campaign (counter = {reply.value})")

    world.run_process(ota_campaign(), name="ota")
    executed = [d for d in resilience.decisions if d["executed"]]
    print(f"\nOTA campaign done; {len(executed)} transition(s) executed, "
          f"{engine.repository.packages_built} package(s) built")


if __name__ == "__main__":
    main()
