"""The examples must run end-to-end (they double as integration tests)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(example):
    result = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert result.stdout.strip()  # examples narrate what they do
