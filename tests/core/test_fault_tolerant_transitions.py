"""Fault-tolerant transitions: networked delivery, retry, degraded mode.

Covers the resilient transition path end to end: chunked package fetch
over the hosted repository, retry/backoff under omission faults on the
repository link, checksum rejection of corrupted payloads, degraded-mode
fallback when the target FTM cannot be installed, and quarantine
reintegration of replicas killed by failed scripts.
"""

import pytest

from repro.app.workloads import constant
from repro.core import (
    AdaptationEngine,
    PackageFetchFailed,
    Repository,
    next_best_ftm,
)
from repro.core.parameters import SystemContext
from repro.core.transition import package_blob, package_checksum
from repro.ftm import Client, deploy_ftm_pair
from repro.kernel import Timeout, World

pytestmark = []


def make_world(seed=60):
    world = World(seed=seed)
    world.add_nodes(["alpha", "beta", "client"])
    return world


def deploy(world, ftm="pbr"):
    def do():
        pair = yield from deploy_ftm_pair(world, ftm, ["alpha", "beta"])
        return pair

    return world.run_process(do(), name="deploy")


def attach_repo(world):
    repo = Repository()
    repo.attach(world)
    return repo


# -- the wire format -----------------------------------------------------------------


def test_package_blob_is_deterministic_and_sized():
    repo = Repository()
    package = repo.transition_package("pbr", "lfr", role="master", peer="beta")
    blob = package_blob(package)
    assert len(blob) == package.size
    assert package_blob(package) == blob  # cached + deterministic
    assert package_checksum(package) == package_checksum(package)
    other = repo.transition_package("pbr", "lfr+tr", role="master", peer="beta")
    assert package_checksum(other) != package_checksum(package)


# -- networked fetch: happy path ------------------------------------------------------


def test_networked_fetch_serves_chunks_and_succeeds():
    world = make_world()
    pair = deploy(world)
    repo = attach_repo(world)
    engine = AdaptationEngine(world, pair, repo)

    def do():
        report = yield from engine.transition("lfr+tr")
        return report

    report = world.run_process(do(), name="net-transition")
    assert report.success
    assert pair.ftm == "lfr+tr"
    assert repo.chunks_served > 0
    # every replica fetched each chunk at least once
    package = repo.transition_package(
        "pbr", "lfr+tr", role="master", peer="beta"
    )
    import math

    chunks = math.ceil(package.size / world.costs.package_chunk_bytes)
    for replica_report in report.replicas:
        assert replica_report.fetch_attempts >= chunks
        assert replica_report.corrupt_fetches == 0


def test_unattached_repository_keeps_flat_fetch_cost():
    """Table 3 calibration must not shift when nothing is networked."""
    flat = make_world()
    pair = deploy(flat)
    engine = AdaptationEngine(flat, pair)  # repository NOT attached

    def do():
        report = yield from engine.transition("lfr")
        return report

    report = flat.run_process(do(), name="flat")
    assert report.success
    for replica_report in report.replicas:
        assert replica_report.fetch_attempts == 1


def test_repository_attach_twice_rejected():
    world = make_world()
    repo = attach_repo(world)
    with pytest.raises(ValueError):
        repo.attach(world, "elsewhere")


# -- omission faults on the repository link -------------------------------------------


@pytest.mark.parametrize("loss", [0.1, 0.3])
def test_transitions_converge_under_repository_link_loss(loss):
    """100 seeded transitions under link omission: all converge, none lost.

    The acceptance bar of the resilient-transition design: with omission
    rate <= 0.3 on the repository link every transition ends in success
    or clean degraded fallback, and the concurrent client workload is
    served exactly once.
    """
    outcomes = {"success": 0, "degraded": 0}
    retried = 0
    for offset in range(100):
        world = World(seed=9000 + offset)
        world.add_nodes(["alpha", "beta", "client"])

        def scenario():
            pair = yield from deploy_ftm_pair(world, "pbr", ["alpha", "beta"])
            repo = attach_repo(world)
            world.faults.set_link_omission_rate(
                world.network, "alpha", "repository", loss
            )
            world.faults.set_link_omission_rate(
                world.network, "beta", "repository", loss
            )
            engine = AdaptationEngine(world, pair, repo)
            client = Client(
                world, world.cluster.node("client"), "c1", pair.node_names(),
                timeout=4_000.0, max_attempts=10,
            )
            box = {}

            def adapt():
                yield Timeout(200.0)
                box["report"] = yield from engine.transition("lfr+tr")

            world.sim.spawn(adapt(), name="adapt")
            result = yield from constant(world, client, count=10, period_ms=120.0)
            yield Timeout(2_000.0)
            return pair, box["report"], result

        pair, report, result = world.run_process(scenario(), name="mission")
        assert report.outcome in ("success", "degraded"), report.outcome
        outcomes[report.outcome] += 1
        # exactly-once client service throughout
        assert result.all_ok
        assert result.replies[-1].value == 10
        # converged: serving the target, or cleanly back on the source
        expected = "lfr+tr" if report.success else "pbr"
        assert pair.ftm == expected
        retried += sum(r.fetch_attempts for r in report.replicas)
    assert outcomes["success"] >= 90  # retries absorb almost all loss
    assert retried > 600  # 100 runs x 2 replicas x 3 chunks minimum


def test_backoff_retries_are_traced_and_bounded():
    world = make_world(seed=61)
    pair = deploy(world)
    repo = attach_repo(world)
    world.faults.set_link_omission_rate(world.network, "beta", "repository", 0.4)
    engine = AdaptationEngine(world, pair, repo)

    def do():
        report = yield from engine.transition("lfr")
        return report

    report = world.run_process(do(), name="lossy")
    assert report.outcome in ("success", "degraded")
    beta = next(r for r in report.replicas if r.node == "beta")
    cap = world.costs.fetch_chunk_attempts * world.costs.fetch_integrity_attempts
    import math

    chunks = math.ceil(
        repo.transition_package("pbr", "lfr", role="slave", peer="alpha").size
        / world.costs.package_chunk_bytes
    )
    assert beta.fetch_attempts <= cap * chunks
    if beta.fetch_attempts > chunks:
        assert world.trace.count("adaptation", "fetch_retry") > 0


# -- corruption: checksum always catches it -------------------------------------------


def test_corrupted_fetch_detected_and_refetched():
    world = make_world(seed=62)
    pair = deploy(world)
    repo = attach_repo(world)
    world.faults.arm_transition_fault("fetch", "corrupt", node="beta")
    engine = AdaptationEngine(world, pair, repo)

    def do():
        report = yield from engine.transition("lfr+tr")
        return report

    report = world.run_process(do(), name="corrupt")
    beta = next(r for r in report.replicas if r.node == "beta")
    assert beta.corrupt_fetches >= 1        # the tampered payload was rejected
    assert beta.success                      # ... and the refetch succeeded
    assert world.trace.count("adaptation", "fetch_corrupt_detected") >= 1
    assert pair.ftm == "lfr+tr"


def test_permanently_corrupted_fetch_never_installs(monkeypatch):
    """Even a corruption that survives every retry never reaches the script."""
    world = make_world(seed=63)
    pair = deploy(world)
    repo = attach_repo(world)
    # tamper every chunk every time: the integrity budget must exhaust
    world.faults.arm_transition_fault(
        "fetch", "corrupt", node=None, budget=10_000
    )
    engine = AdaptationEngine(world, pair, repo)

    def do():
        report = yield from engine.transition("lfr")
        return report

    report = world.run_process(do(), name="doomed-fetch")
    assert report.success is False
    assert report.degraded is True
    for replica_report in report.replicas:
        assert replica_report.success is False
        assert "checksum" in (replica_report.error or "")
    # nothing was installed: both replicas still serve the source FTM
    assert pair.ftm == "pbr"
    assert world.trace.count("script", "commit") == 0


# -- degraded-mode fallback -----------------------------------------------------------


def test_repository_crash_degrades_cleanly():
    world = make_world(seed=64)
    pair = deploy(world)
    repo = attach_repo(world)
    engine = AdaptationEngine(world, pair, repo)
    world.cluster.node("repository").crash()

    def do():
        report = yield from engine.transition("lfr")
        return report

    report = world.run_process(do(), name="repo-down")
    assert report.outcome == "degraded"
    assert report.fallback_ftm == "pbr"  # no context: source FTM
    assert pair.ftm == "pbr"
    assert all(r.alive for r in pair.replicas)  # nothing was killed
    assert engine.degraded_transitions == 1
    assert world.trace.count("adaptation", "transition_degraded") == 1


def test_degraded_fallback_consults_ftm_ranking():
    world = make_world(seed=65)
    pair = deploy(world)
    repo = attach_repo(world)
    context = SystemContext()
    engine = AdaptationEngine(world, pair, repo, context=context)
    world.cluster.node("repository").crash()

    def do():
        report = yield from engine.transition("lfr+tr")
        return report

    report = world.run_process(do(), name="repo-down")
    assert report.degraded
    expected = next_best_ftm(context, exclude=("lfr+tr",), reachable=repo.knows)
    assert expected is not None
    assert report.fallback_ftm == expected


def test_degraded_service_continues_under_load():
    world = make_world(seed=66)

    def scenario():
        pair = yield from deploy_ftm_pair(world, "pbr", ["alpha", "beta"])
        repo = attach_repo(world)
        engine = AdaptationEngine(world, pair, repo)
        client = Client(
            world, world.cluster.node("client"), "c1", pair.node_names(),
            timeout=4_000.0, max_attempts=10,
        )
        world.cluster.node("repository").crash()
        box = {}

        def adapt():
            yield Timeout(300.0)
            box["report"] = yield from engine.transition("lfr")

        world.sim.spawn(adapt(), name="adapt")
        result = yield from constant(world, client, count=15, period_ms=120.0)
        while "report" not in box:  # fetch retries may outlast the workload
            yield Timeout(500.0)
        return pair, box["report"], result

    pair, report, result = world.run_process(scenario(), name="degraded-load")
    assert report.degraded
    assert result.all_ok
    assert result.replies[-1].value == 15  # exactly-once despite the fallback
    assert pair.ftm == "pbr"


# -- quarantine: replicas killed by failed scripts come back --------------------------


def test_quarantine_reintegrates_replicas_without_pair_recovery():
    world = make_world(seed=67)
    pair = deploy(world)
    engine = AdaptationEngine(world, pair, quarantine_delay=300.0)
    assert pair.recovery_enabled is False
    # tamper the script on BOTH replicas: the transition fails everywhere,
    # the fail-silent wrapper kills both
    world.faults.arm_transition_fault("script", "corrupt", node="alpha")
    world.faults.arm_transition_fault("script", "corrupt", node="beta")

    def do():
        report = yield from engine.transition("lfr")
        yield Timeout(10_000.0)  # quarantine restart + redeploy
        return report

    report = world.run_process(do(), name="quarantine")
    assert report.degraded
    assert all(r.killed for r in report.replicas)
    # the quarantine loop restarted and reintegrated both replicas on the
    # source configuration
    assert engine.quarantine_recoveries == 2
    assert all(r.alive for r in pair.replicas)
    assert all(r.deployed_ftm == "pbr" for r in pair.replicas)
    assert world.trace.count("adaptation", "quarantine_restart") == 2


def test_divergent_replica_is_fail_silenced_and_recovered():
    """One replica's fetch exhausts while the peer reaches the target."""
    world = make_world(seed=68)
    pair = deploy(world)
    pair.enable_recovery(restart_delay=300.0)
    repo = attach_repo(world)
    # beta's fetch is permanently corrupted; alpha's is clean
    world.faults.arm_transition_fault(
        "fetch", "corrupt", node="beta", budget=10_000
    )
    engine = AdaptationEngine(world, pair, repo)

    def do():
        report = yield from engine.transition("lfr")
        yield Timeout(10_000.0)  # recovery tail
        return report

    report = world.run_process(do(), name="diverged")
    assert report.success  # alpha made it
    beta = next(r for r in report.replicas if r.node == "beta")
    assert beta.success is False
    assert beta.killed  # diverged: fail-silenced rather than left mixed
    assert world.trace.count("adaptation", "replica_diverged_killed") == 1
    # recovery brought beta back in the configuration alpha logged
    assert pair.replica_on("beta").alive
    assert pair.replica_on("beta").deployed_ftm == "lfr"


# -- the regression the old engine had ------------------------------------------------


def test_all_replicas_dead_reports_failure_not_success():
    """Regression: the report must not claim success with zero live replicas,
    and the component count must not be rebuilt from a dead replica."""
    world = make_world(seed=69)
    pair = deploy(world)
    engine = AdaptationEngine(world, pair)
    world.cluster.node("alpha").crash()
    world.cluster.node("beta").crash()

    def do():
        report = yield from engine.transition("lfr")
        return report

    report = world.run_process(do(), name="dead")
    assert report.success is False
    assert report.outcome == "degraded"
    assert report.component_count > 0
    assert all(r.error == "replica down" for r in report.replicas)


def test_fetch_failure_error_type():
    err = PackageFetchFailed("chunk 0 unanswered")
    assert "chunk 0" in str(err)


# -- in-flight agreement traffic across the swap ---------------------------------------


def test_checkpoint_buffered_across_transition_is_applied_not_dropped():
    """A PBR checkpoint caught behind the closed gate while the script
    swaps syncAfter to LFR carries state the client was already acked
    for — the new implementation must apply it, not reject it.  (Found
    by the 1000-mission stress campaign: dropping it loses an update
    when the primary then crashes and the stale backup promotes.)"""
    from repro.ftm.messages import PeerEnvelope

    world = make_world(seed=61)

    def scenario():
        pair = yield from deploy_ftm_pair(world, "pbr", ["alpha", "beta"])
        engine = AdaptationEngine(world, pair)
        beta = pair.replica_on("beta")

        def racer():
            # land the checkpoint exactly where the race puts it: in the
            # gate buffer, while the script is rewiring the composite
            while beta.composite.gate_open:
                yield Timeout(5.0)
            envelope = PeerEnvelope(
                kind="checkpoint", request_id=7, client="c1",
                body={"state": {"total": 41, "processed": 7}, "result": 41},
            )
            world.network.send("alpha", "beta", "peer", envelope, size=256)

        world.sim.spawn(racer(), name="racer")
        report = yield from engine.transition("lfr")
        yield Timeout(500.0)  # let the buffered checkpoint drain
        return pair, report

    pair, report = world.run_process(scenario(), name="scenario")
    assert report.success
    assert pair.ftm == "lfr"
    # the late checkpoint crossed the swap and was applied by LfrSyncAfter
    assert world.trace.count("ftm", "late_peer_agreement") == 1
    assert world.trace.count("ftm", "checkpoint_applied") == 1
    assert world.trace.count("replica", "peer_error") == 0
    backup = pair.replica_on("beta").composite.component("server").implementation
    assert backup.application.total == 41
