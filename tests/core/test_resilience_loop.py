"""Tests for Monitoring Engine, Resilience Manager, baseline, stability."""

import pytest

from repro.core import (
    AdaptationEngine,
    MonitoringEngine,
    PreprogrammedAdaptation,
    ResilienceManager,
    SystemManager,
    replay_oscillation,
    verify_no_oscillation,
)
from repro.core.preprogrammed import preprogrammed_assembly
from repro.core.transition_graph import _ctx
from repro.ftm import Client, FTMPair, deploy_ftm_pair, ftm_assembly
from repro.kernel import World


def make_world(seed=50):
    world = World(seed=seed)
    world.add_nodes(["alpha", "beta", "client"])
    return world


def deploy(world, ftm="pbr", **kwargs):
    def do():
        pair = yield from deploy_ftm_pair(world, ftm, ["alpha", "beta"], **kwargs)
        return pair

    return world.run_process(do(), name="deploy")


def stack(world, pair, auto_approve=False):
    engine = AdaptationEngine(world, pair)
    monitoring = MonitoringEngine(world, ["alpha", "beta"])
    manager = SystemManager(auto_approve=auto_approve)
    resilience = ResilienceManager(
        world, engine, monitoring, _ctx(), system_manager=manager
    )
    monitoring.start()
    resilience.start()
    return engine, monitoring, manager, resilience


# -- monitoring probes --------------------------------------------------------------


def test_bandwidth_probe_fires_on_link_degradation():
    world = make_world()
    deploy(world, "pbr")
    monitoring = MonitoringEngine(world, ["alpha", "beta"])
    monitoring.start()
    world.run(until=world.now + 600.0)
    assert not any(
        t.event == "bandwidth-drop" for t in monitoring.trigger_history
    )
    world.network.set_link("alpha", "beta", bandwidth=500.0)  # collapse
    world.run(until=world.now + 600.0)
    drops = [t for t in monitoring.trigger_history if t.event == "bandwidth-drop"]
    assert len(drops) == 1
    assert drops[0].source == "probe"


def test_bandwidth_probe_hysteresis_no_repeat():
    world = make_world()
    deploy(world, "pbr")
    monitoring = MonitoringEngine(world, ["alpha", "beta"])
    monitoring.start()
    world.network.set_link("alpha", "beta", bandwidth=500.0)
    world.run(until=world.now + 2_000.0)
    drops = [t for t in monitoring.trigger_history if t.event == "bandwidth-drop"]
    assert len(drops) == 1  # scarce state latched, not re-triggered


def test_bandwidth_recovery_trigger():
    world = make_world()
    deploy(world, "pbr")
    monitoring = MonitoringEngine(world, ["alpha", "beta"])
    monitoring.start()
    world.network.set_link("alpha", "beta", bandwidth=500.0)
    world.run(until=world.now + 600.0)
    world.network.set_link("alpha", "beta", bandwidth=12_500.0)
    world.run(until=world.now + 600.0)
    ups = [t for t in monitoring.trigger_history if t.event == "bandwidth-increase"]
    assert len(ups) == 1


def test_error_observer_detects_transient_fault_pattern():
    world = make_world()
    pair = deploy(world, "pbr+tr")
    monitoring = MonitoringEngine(world, ["alpha", "beta"])
    monitoring.start()
    client = Client(world, world.cluster.node("client"), "c1", pair.node_names())
    world.faults.arm_transient("alpha", probability=1.0, budget=4)

    def workload():
        for _ in range(4):
            yield from client.request(("add", 1))

    world.run_process(workload(), name="workload")
    aging = [t for t in monitoring.trigger_history if t.event == "hardware-aging"]
    assert len(aging) == 1
    assert aging[0].source == "observer"


# -- the closed loop -----------------------------------------------------------------------


def test_mandatory_transition_fires_automatically():
    world = make_world()
    pair = deploy(world, "pbr")
    _engine, monitoring, _manager, _resilience = stack(world, pair)
    world.network.set_link("alpha", "beta", bandwidth=500.0)
    world.run(until=world.now + 4_000.0)
    assert pair.ftm == "lfr"  # bandwidth drop -> mandatory PBR->LFR
    assert world.trace.count("adaptation", "transition_complete") == 1


def test_possible_transition_waits_for_manager():
    world = make_world()
    pair = deploy(world, "pbr")
    engine, monitoring, manager, resilience = stack(world, pair)
    # degrade and recover the link: LFR was mandatory, PBR back is possible
    world.network.set_link("alpha", "beta", bandwidth=500.0)
    world.run(until=world.now + 4_000.0)
    assert pair.ftm == "lfr"
    world.network.set_link("alpha", "beta", bandwidth=12_500.0)
    world.run(until=world.now + 4_000.0)
    assert pair.ftm == "lfr"  # NOT auto-reverted (oscillation protection)
    assert len(manager.pending) == 1
    assert manager.pending[0].target_ftm == "pbr"

    # the manager approves: now it runs
    def approve():
        report = yield from resilience.execute_pending(approve=True)
        return report

    world.run_process(approve(), name="approve")
    assert pair.ftm == "pbr"


def test_manager_rejection_keeps_current_ftm():
    world = make_world()
    pair = deploy(world, "pbr")
    _engine, _monitoring, manager, resilience = stack(world, pair)
    world.network.set_link("alpha", "beta", bandwidth=500.0)
    world.run(until=world.now + 4_000.0)
    world.network.set_link("alpha", "beta", bandwidth=12_500.0)
    world.run(until=world.now + 4_000.0)

    def reject():
        report = yield from resilience.execute_pending(approve=False)
        return report

    report = world.run_process(reject(), name="reject")
    assert report is None
    assert pair.ftm == "lfr"


def test_fault_model_trigger_composes_tr():
    world = make_world()
    pair = deploy(world, "lfr")
    _engine, monitoring, _manager, resilience = stack(world, pair)
    resilience.context = _ctx(bandwidth_ok=False)  # how we got to LFR
    resilience.notify_event("hardware-aging")
    world.run(until=world.now + 4_000.0)
    assert pair.ftm == "lfr+tr"  # proactive composition before faults bite


def test_manager_notify_application_change():
    world = make_world()
    pair = deploy(world, "pbr")
    _engine, _monitoring, _manager, resilience = stack(world, pair)
    resilience.notify_event("state-access-loss")
    world.run(until=world.now + 4_000.0)
    assert pair.ftm == "lfr"  # checkpointing impossible -> mandatory


# -- preprogrammed baseline -------------------------------------------------------------------


def deploy_preprogrammed(world, ftm="pbr"):
    nodes = [world.cluster.node("alpha"), world.cluster.node("beta")]
    pair = FTMPair(world, ftm, nodes)
    # swap the blueprint builder for the all-branches variant
    original = pair.spec_for

    def spec_for(index, ftm_name=None):
        replica = pair.replicas[index]
        peer = pair.replicas[1 - index].node.name
        role = "master" if index == 0 else "slave"
        return preprogrammed_assembly(
            ftm_name or pair.ftm, role=role, peer=peer, app=pair.app,
            assertion=pair.assertion, composite=pair.composite_name,
        )

    pair.spec_for = spec_for

    def do():
        yield from pair.deploy()
        return pair

    return world.run_process(do(), name="deploy-pre")


def test_preprogrammed_switch_is_fast_but_loaded():
    world = make_world()
    pair = deploy_preprogrammed(world, "pbr")
    adaptation = PreprogrammedAdaptation(world, pair)
    client = Client(world, world.cluster.node("client"), "c1", pair.node_names())

    def scenario():
        r1 = yield from client.request(("add", 5))
        record = yield from adaptation.switch("lfr")
        r2 = yield from client.request(("add", 5))
        return r1, record, r2

    r1, record, r2 = world.run_process(scenario(), name="scenario")
    assert r1.value == 5 and r2.value == 10
    assert record["duration_ms"] < 100.0       # parametric switch: fast
    assert adaptation.resident_variant_count() == 8  # ...but dead code resident
    agile_spec = ftm_assembly("pbr", role="master", peer="beta")
    agile_bytes = sum(c.size for c in agile_spec.components)
    assert adaptation.resident_bytes() > agile_bytes * 1.4


def test_preprogrammed_cannot_integrate_unforeseen_ftm():
    world = make_world()
    pair = deploy_preprogrammed(world, "pbr")
    adaptation = PreprogrammedAdaptation(world, pair)
    from repro.ftm import UnknownFTM

    def do():
        yield from adaptation.switch("brand-new-ftm")

    with pytest.raises(UnknownFTM):
        world.run_process(do(), name="switch")


# -- stability -----------------------------------------------------------------------------------


def test_scenario_graph_has_no_oscillation_violations():
    assert verify_no_oscillation() == []


def test_oscillating_bandwidth_with_man_in_the_loop():
    events = ["bandwidth-drop", "bandwidth-increase"] * 10
    with_manager = replay_oscillation("pbr", _ctx(), events, man_in_the_loop=True)
    naive = replay_oscillation("pbr", _ctx(), events, man_in_the_loop=False)
    # the naive policy reconfigures on every swing; the paper's rule
    # executes only the first (mandatory) transition and then holds
    assert naive.transitions == len(events)
    assert with_manager.transitions == 1
    assert with_manager.trajectory[-1] == "lfr"
