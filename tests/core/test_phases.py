"""Tests for the operational-phase manager (proactive FT adaptation)."""

import pytest

from repro.core import (
    AdaptationEngine,
    FaultClass,
    MonitoringEngine,
    ResilienceManager,
    SystemManager,
)
from repro.core.phases import Phase, PhaseManager, PhaseSchedule
from repro.core.transition_graph import _ctx
from repro.ftm import deploy_ftm_pair
from repro.kernel import World


def build(seed=100):
    world = World(seed=seed)
    world.add_nodes(["alpha", "beta"])

    def do():
        pair = yield from deploy_ftm_pair(world, "pbr", ["alpha", "beta"])
        return pair

    pair = world.run_process(do(), name="deploy")
    engine = AdaptationEngine(world, pair)
    monitoring = MonitoringEngine(world, ["alpha", "beta"])
    resilience = ResilienceManager(
        world, engine, monitoring, _ctx(),
        system_manager=SystemManager(auto_approve=True),
    )
    monitoring.start()
    resilience.start()
    return world, pair, resilience


def mission_schedule():
    return (
        PhaseSchedule()
        .add(Phase.of("cruise", 10_000.0, FaultClass.CRASH))
        .add(
            Phase.of(
                "orbit-insertion",
                8_000.0,
                FaultClass.CRASH,
                FaultClass.TRANSIENT_VALUE,
                FaultClass.PERMANENT_VALUE,
                critical=True,
            )
        )
        .add(Phase.of("science", 10_000.0, FaultClass.CRASH))
    )


# -- schedule validation ---------------------------------------------------------


def test_schedule_rejects_duplicates():
    schedule = PhaseSchedule().add(Phase.of("a", 10.0))
    with pytest.raises(ValueError, match="duplicate"):
        schedule.add(Phase.of("a", 20.0))


def test_schedule_rejects_nonpositive_duration():
    with pytest.raises(ValueError, match="duration"):
        PhaseSchedule().add(Phase.of("a", 0.0))


def test_schedule_deltas():
    deltas = mission_schedule().fault_model_deltas()
    assert deltas[0] == ("cruise", frozenset(), frozenset())
    name, added, removed = deltas[1]
    assert name == "orbit-insertion"
    assert added == {FaultClass.TRANSIENT_VALUE, FaultClass.PERMANENT_VALUE}
    name, added, removed = deltas[2]
    assert removed == {FaultClass.TRANSIENT_VALUE, FaultClass.PERMANENT_VALUE}


def test_total_duration():
    assert mission_schedule().total_duration() == 28_000.0


# -- the phase manager driving the loop ----------------------------------------------


def test_critical_phase_hardens_proactively():
    world, pair, resilience = build()
    manager = PhaseManager(world, resilience, mission_schedule(), lead_time_ms=3_000.0)
    world.run_process(manager.run(), name="mission")

    entries = {entry["phase"]: entry for entry in manager.log}
    # during cruise: the cheap crash-only FTM
    assert entries["cruise"]["ftm"] == "pbr"
    # the critical phase was ENTERED with A&Duplex already in place
    assert entries["orbit-insertion"]["ftm"] in ("a+pbr", "a+lfr")
    # after the burn the manager relaxed (auto-approve policy)
    assert entries["science"]["ftm"] == "pbr"


def test_hardening_completes_before_phase_entry():
    world, pair, resilience = build(seed=101)
    manager = PhaseManager(world, resilience, mission_schedule(), lead_time_ms=3_000.0)
    world.run_process(manager.run(), name="mission")

    entered = world.trace.select("phase", "entered", phase="orbit-insertion")[0]
    transitions = world.trace.select("adaptation", "transition_complete")
    hardening = [t for t in transitions if t.detail("target") in ("a+pbr", "a+lfr")]
    assert hardening
    assert hardening[0].time <= entered.time  # proactive, not reactive


def test_phase_trace_records_proactive_events():
    world, _pair, resilience = build(seed=102)
    manager = PhaseManager(world, resilience, mission_schedule(), lead_time_ms=2_500.0)
    world.run_process(manager.run(), name="mission")
    events = world.trace.select("phase", "proactive_events")
    assert any(
        "permanent_value" in record.detail("added", ()) for record in events
    )
