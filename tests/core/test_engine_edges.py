"""Edge cases of the repository and the adaptation engine."""

import pytest

from repro.core import (
    AdaptationEngine,
    PackageRejected,
    Repository,
    TransitionFailed,
)
from repro.ftm import deploy_ftm_pair, ftm_assembly
from repro.kernel import World


def make_pair(seed=140):
    world = World(seed=seed)
    world.add_nodes(["alpha", "beta", "client"])

    def do():
        pair = yield from deploy_ftm_pair(world, "pbr", ["alpha", "beta"])
        return pair

    pair = world.run_process(do(), name="deploy")
    return world, pair


def test_repository_rejects_malformed_custom_ftm():
    repository = Repository()

    def broken_builder(role, peer, app="counter", assertion="always-true",
                       composite="ftm", **kwargs):
        # a blueprint whose syncAfter is missing: the generated script
        # would remove components that the target never re-adds, leaving
        # dangling wires -> off-line validation must reject the package
        base = ftm_assembly("lfr", role=role, peer=peer, app=app,
                            assertion=assertion, composite=composite)
        from repro.components import AssemblySpec

        return AssemblySpec(
            name=base.name,
            components=tuple(c for c in base.components if c.name != "syncAfter"),
            wires=base.wires,
            promotions=base.promotions,
        )

    repository.register_ftm("broken", broken_builder)
    with pytest.raises(PackageRejected):
        repository.transition_package("pbr", "broken", "master", "beta")
    assert repository.packages_rejected == 1


def test_transition_degrades_when_both_replicas_dead():
    world, pair = make_pair()
    engine = AdaptationEngine(world, pair)
    world.cluster.node("alpha").crash()
    world.cluster.node("beta").crash()

    def do():
        report = yield from engine.transition("lfr")
        return report

    report = world.run_process(do(), name="doomed")
    # regression: with every replica dead the report must NOT claim success
    assert report.success is False
    assert report.degraded is True
    # the component count is still computed (from the repository manifest,
    # not from a dead replica)
    assert report.component_count > 0
    assert pair.ftm == "pbr"


def test_transition_raises_when_both_replicas_dead_without_fallback():
    world, pair = make_pair()
    engine = AdaptationEngine(world, pair)
    world.cluster.node("alpha").crash()
    world.cluster.node("beta").crash()

    def do():
        yield from engine.transition("lfr", fallback=False)

    with pytest.raises(TransitionFailed):
        world.run_process(do(), name="doomed")
    assert pair.ftm == "pbr"


def test_engine_history_records_everything():
    world, pair = make_pair(seed=141)
    engine = AdaptationEngine(world, pair)

    def do():
        yield from engine.transition("lfr")
        yield from engine.transition("lfr")  # no-op
        yield from engine.transition("pbr+tr")

    world.run_process(do(), name="history")
    assert len(engine.history) == 3
    assert [r.target_ftm for r in engine.history] == ["lfr", "lfr", "pbr+tr"]
    assert engine.history[1].per_replica_ms == 0.0  # the no-op


def test_transition_report_phase_shares_sum_to_one():
    world, pair = make_pair(seed=142)
    engine = AdaptationEngine(world, pair)

    def do():
        report = yield from engine.transition("a+lfr")
        return report

    report = world.run_process(do(), name="t")
    for replica in report.replicas:
        shares = replica.phase_shares()
        assert sum(shares.values()) == pytest.approx(1.0)
        assert all(share > 0 for share in shares.values())


def test_deployed_ftm_bookkeeping_follows_transitions():
    world, pair = make_pair(seed=143)
    engine = AdaptationEngine(world, pair)
    assert all(r.deployed_ftm == "pbr" for r in pair.replicas)

    def do():
        yield from engine.transition("lfr+tr")

    world.run_process(do(), name="t")
    assert all(r.deployed_ftm == "lfr+tr" for r in pair.replicas)
