"""Tests for the networkx-based analysis of the scenario graph."""


from repro.core.graph_analysis import (
    eccentricity_from,
    figure2_dot,
    mandatory_cycles,
    reachable_states,
    scenario_digraph,
    scenario_dot,
    trap_states,
)


def test_graph_has_expected_shape():
    graph = scenario_digraph()
    assert graph.number_of_nodes() == 8
    assert graph.number_of_edges() > 30


def test_no_trap_states():
    """From every state, some event path returns to PBR (determinism)."""
    assert trap_states() == []


def test_mandatory_subgraph_has_no_cycles():
    """The automatic loop can never cycle without a manager decision."""
    assert mandatory_cycles() == []


def test_every_state_reachable_from_initial():
    reachable = reachable_states()
    assert len(reachable) == 8  # including the no-generic-solution sink


def test_eccentricity_is_small():
    """Any configuration is at most a few parameter events away."""
    distances = eccentricity_from()
    assert max(distances.values()) <= 3
    assert distances["a+duplex"] == 1  # one critical-phase-start away


def test_scenario_dot_is_wellformed():
    dot = scenario_dot()
    assert dot.startswith("digraph scenario {")
    assert dot.rstrip().endswith("}")
    assert '"pbr (determinism)" -> "lfr (state access)"' in dot
    assert "doubleoctagon" in dot  # the sink stands out
    # every kind appears with its style
    assert 'color="red"' in dot and 'color="darkgreen"' in dot


def test_figure2_dot_is_wellformed():
    dot = figure2_dot()
    assert dot.startswith("graph ftms {")
    assert '"pbr" -- "lfr"' in dot
    assert "A,R" in dot
