"""Tests for packages, the repository, and the adaptation engine."""

import pytest

from repro.core import AdaptationEngine, Repository, TransitionFailed, build_package
from repro.ftm import FTM_NAMES, Client, deploy_ftm_pair, ftm_assembly
from repro.ftm import variable_feature_distance
from repro.kernel import Timeout, World


def make_world(seed=40):
    world = World(seed=seed)
    world.add_nodes(["alpha", "beta", "client"])
    return world


def deploy(world, ftm="pbr", **kwargs):
    def do():
        pair = yield from deploy_ftm_pair(world, ftm, ["alpha", "beta"], **kwargs)
        return pair

    return world.run_process(do(), name="deploy")


# -- packages & repository -----------------------------------------------------------


def test_package_contents_match_variable_features():
    source = ftm_assembly("pbr", role="master", peer="beta")
    target = ftm_assembly("lfr", role="master", peer="beta")
    package = build_package("pbr", "lfr", source, target)
    names = sorted(spec.name for spec in package.components)
    assert names == ["syncAfter", "syncBefore"]
    assert package.component_count == 2
    assert package.removed == ("syncAfter", "syncBefore")
    assert package.size > 0


def test_repository_builds_and_caches():
    repository = Repository()
    package1 = repository.transition_package("pbr", "lfr", "master", "beta")
    package2 = repository.transition_package("pbr", "lfr", "master", "beta")
    assert package1 is package2
    assert repository.packages_built == 1


def test_repository_validates_packages():
    repository = Repository()
    package = repository.transition_package("lfr", "lfr+tr", "slave", "alpha")
    assert package.component_count == 1
    assert [s.name for s in package.components] == ["proceed"]


def test_repository_knows_catalog_ftms():
    repository = Repository()
    for ftm in FTM_NAMES:
        assert repository.knows(ftm)
    assert not repository.knows("made-up")


def test_repository_register_custom_ftm():
    repository = Repository()

    def builder(role, peer, app="counter", assertion="always-true", composite="ftm",
                **kwargs):
        return ftm_assembly("pbr+tr", role=role, peer=peer, app=app,
                            assertion=assertion, composite=composite)

    repository.register_ftm("pbr-hardened", builder)
    assert repository.knows("pbr-hardened")
    with pytest.raises(ValueError):
        repository.register_ftm("pbr-hardened", builder)


# -- transitions on a live pair ----------------------------------------------------------


def test_pbr_to_lfr_transition_live():
    world = make_world()
    pair = deploy(world, "pbr")
    engine = AdaptationEngine(world, pair)
    client = Client(world, world.cluster.node("client"), "c1", pair.node_names())

    def scenario():
        before = yield from client.request(("add", 5))
        report = yield from engine.transition("lfr")
        after = yield from client.request(("add", 5))
        return before, report, after

    before, report, after = world.run_process(scenario(), name="scenario")
    assert before.value == 5 and after.value == 10
    assert report.success
    assert pair.ftm == "lfr"
    assert pair.logged_configuration()["ftm"] == "lfr"
    # both replicas transitioned
    assert len([r for r in report.replicas if r.success]) == 2


def test_transition_preserves_application_state():
    world = make_world()
    pair = deploy(world, "pbr")
    engine = AdaptationEngine(world, pair)
    client = Client(world, world.cluster.node("client"), "c1", pair.node_names())

    def scenario():
        for _ in range(4):
            yield from client.request(("add", 10))
        yield from engine.transition("lfr")
        reply = yield from client.request(("get",))
        return reply

    reply = world.run_process(scenario(), name="scenario")
    assert reply.value == 40  # no state transfer issues: state never moved


def test_transition_preserves_at_most_once_log():
    world = make_world()
    pair = deploy(world, "pbr")
    engine = AdaptationEngine(world, pair)
    client = Client(world, world.cluster.node("client"), "c1", pair.node_names())

    def scenario():
        yield from client.request(("add", 5))
        yield from engine.transition("lfr")
        # replay request 1 manually after the transition
        from repro.ftm.messages import ClientRequest

        mailbox = world.network.bind("client", "probe")
        world.network.send(
            "client", "alpha", "requests",
            ClientRequest(1, "c1", ("add", 5), "client", "probe"), size=128,
        )
        message = yield mailbox.get()
        return message.payload

    reply = world.run_process(scenario(), name="scenario")
    assert reply.replayed  # the reply log survived the transition


def test_requests_buffered_during_transition_are_served_after():
    world = make_world()
    pair = deploy(world, "pbr")
    engine = AdaptationEngine(world, pair)
    client = Client(
        world, world.cluster.node("client"), "c1", pair.node_names(),
        timeout=5_000.0,
    )
    results = {}

    def requester():
        # fire during the transition window
        yield Timeout(200.0)
        reply = yield from client.request(("add", 7))
        results["reply"] = reply
        results["served_at"] = world.now

    def transitioner():
        results["t0"] = world.now
        report = yield from engine.transition("lfr")
        results["t1"] = world.now
        return report

    world.sim.spawn(requester())
    world.run_process(transitioner(), name="transition")
    world.run(until=world.now + 8_000.0)
    assert results["reply"].ok and results["reply"].value == 7


def test_noop_transition_is_free():
    world = make_world()
    pair = deploy(world, "pbr")
    engine = AdaptationEngine(world, pair)

    def do():
        report = yield from engine.transition("pbr")
        return report

    report = world.run_process(do(), name="noop")
    assert report.per_replica_ms == 0.0
    assert pair.ftm == "pbr"


@pytest.mark.parametrize("source", FTM_NAMES)
@pytest.mark.parametrize("target", FTM_NAMES)
def test_every_pair_transition_works(source, target):
    if source == target:
        pytest.skip("identity")
    world = make_world(seed=hash((source, target)) % 1000)
    pair = deploy(world, source, assertion="counter-range")
    engine = AdaptationEngine(world, pair)
    client = Client(world, world.cluster.node("client"), "c1", pair.node_names())

    def scenario():
        r1 = yield from client.request(("add", 1))
        report = yield from engine.transition(target)
        r2 = yield from client.request(("add", 1))
        return r1, report, r2

    r1, report, r2 = world.run_process(scenario(), name="scenario")
    assert r1.value == 1 and r2.value == 2
    assert report.success
    assert pair.ftm == target
    assert report.component_count == variable_feature_distance(source, target)


def test_transition_time_scales_with_component_count():
    times = {}
    for target, count in [("pbr+tr", 1), ("lfr", 2), ("lfr+tr", 3)]:
        world = make_world()
        pair = deploy(world, "pbr")
        engine = AdaptationEngine(world, pair)

        def do():
            report = yield from engine.transition(target)
            return report

        report = world.run_process(do(), name="t")
        times[count] = report.per_replica_ms
    assert times[1] < times[2] < times[3]
    # and every transition is much cheaper than a full deployment (~3.8 s)
    assert times[3] < 2_000.0


# -- distributed consistency under failure ---------------------------------------------------


def test_script_failure_kills_replica_and_survivor_continues():
    world = make_world()
    pair = deploy(world, "pbr")
    engine = AdaptationEngine(world, pair)
    client = Client(world, world.cluster.node("client"), "c1", pair.node_names())

    def scenario():
        report = yield from engine.transition(
            "lfr", inject_script_failure_on="beta"
        )
        yield Timeout(300.0)  # let the FD notice the kill
        reply = yield from client.request(("add", 3))
        return report, reply

    report, reply = world.run_process(scenario(), name="scenario")
    beta_report = next(r for r in report.replicas if r.node == "beta")
    assert beta_report.killed and not beta_report.success
    alpha_report = next(r for r in report.replicas if r.node == "alpha")
    assert alpha_report.success
    assert not world.cluster.node("beta").is_up  # fail-silent
    assert reply.ok and reply.value == 3        # master-alone serves on
    assert pair.ftm == "lfr"                     # survivor's config won
    assert pair.logged_configuration()["ftm"] == "lfr"


def test_script_failure_on_both_replicas_degrades_transition():
    world = make_world()
    pair = deploy(world, "pbr")
    engine = AdaptationEngine(world, pair)

    # fail everywhere: inject on one replica and crash the other first
    world.cluster.node("alpha").crash()

    def scenario():
        report = yield from engine.transition(
            "lfr", inject_script_failure_on="beta"
        )
        return report

    report = world.run_process(scenario(), name="scenario")
    assert report.success is False
    assert report.degraded is True
    assert report.outcome == "degraded"
    # no context given: the fallback is the source FTM the pair keeps serving
    assert report.fallback_ftm == "pbr"
    assert pair.ftm == "pbr"  # configuration unchanged
    assert engine.degraded_transitions == 1


def test_script_failure_on_both_replicas_raises_without_fallback():
    world = make_world()
    pair = deploy(world, "pbr")
    engine = AdaptationEngine(world, pair)
    world.cluster.node("alpha").crash()

    def scenario():
        yield from engine.transition(
            "lfr", inject_script_failure_on="beta", fallback=False
        )

    with pytest.raises(TransitionFailed):
        world.run_process(scenario(), name="scenario")
    assert pair.ftm == "pbr"  # configuration unchanged


def test_crashed_mid_transition_replica_recovers_in_target_config():
    world = make_world()
    pair = deploy(world, "pbr")
    pair.enable_recovery(restart_delay=300.0)
    engine = AdaptationEngine(world, pair)

    def scenario():
        report = yield from engine.transition(
            "lfr", inject_script_failure_on="beta"
        )
        yield Timeout(8_000.0)  # restart + redeploy + reintegration
        return report

    world.run_process(scenario(), name="scenario")
    beta = pair.replica_on("beta")
    assert beta.alive
    # Sec 5.3: the restarted replica came back in the configuration its
    # peer reached (LFR), read from stable storage
    assert beta.composite.component("syncBefore").implementation.__class__.__name__ == (
        "LfrSyncBefore"
    )
    assert pair.ftm == "lfr"
