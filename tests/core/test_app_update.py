"""Tests for on-line application updates (the paper's A-change pathway)."""

import pytest

from repro.app import register_application
from repro.core import AdaptationEngine
from repro.ftm import Client, deploy_ftm_pair
from repro.kernel import World
from repro.patterns.server import CounterServer


class CounterServerV2(CounterServer):
    """Version 2: counts in steps of two (observably different behaviour)."""

    def process(self, payload):
        if isinstance(payload, tuple) and payload and payload[0] == "add":
            self.processed += 1
            self.total += 2 * payload[1]
            return self.total
        return super().process(payload)


def _register_v2():
    try:
        register_application(
            "counter-v2", CounterServerV2, deterministic=True,
            state_accessible=True, processing_cost_ms=5.0,
        )
    except ValueError:
        pass  # already registered by an earlier test


@pytest.fixture
def setup():
    _register_v2()
    world = World(seed=90)
    world.add_nodes(["alpha", "beta", "client"])

    def do():
        pair = yield from deploy_ftm_pair(world, "pbr", ["alpha", "beta"])
        return pair

    pair = world.run_process(do(), name="deploy")
    engine = AdaptationEngine(world, pair)
    client = Client(world, world.cluster.node("client"), "c1", pair.node_names())
    return world, pair, engine, client


def test_application_update_changes_behaviour(setup):
    world, pair, engine, client = setup

    def scenario():
        r1 = yield from client.request(("add", 5))      # v1: +5
        yield from engine.update_application("counter-v2")
        r2 = yield from client.request(("add", 5))      # v2: +10
        return r1, r2

    r1, r2 = world.run_process(scenario(), name="scenario")
    assert r1.value == 5
    assert r2.value == 15  # 5 (transferred) + 2*5 (v2 semantics)
    assert pair.app == "counter-v2"


def test_application_update_transfers_state(setup):
    world, pair, engine, client = setup

    def scenario():
        for _ in range(4):
            yield from client.request(("add", 10))
        yield from engine.update_application("counter-v2")
        reply = yield from client.request(("get",))
        return reply

    reply = world.run_process(scenario(), name="scenario")
    assert reply.value == 40  # state survived the version change


def test_application_update_without_state_transfer(setup):
    world, pair, engine, client = setup

    def scenario():
        yield from client.request(("add", 10))
        yield from engine.update_application("counter-v2", transfer_state=False)
        reply = yield from client.request(("get",))
        return reply

    reply = world.run_process(scenario(), name="scenario")
    assert reply.value == 0  # fresh v2 instance, blank state


def test_application_update_replaces_only_the_server(setup):
    world, pair, engine, _client = setup

    def scenario():
        report = yield from engine.update_application("counter-v2")
        return report

    report = world.run_process(scenario(), name="scenario")
    assert report.success
    assert report.component_count == 1
    # FTM variable features untouched: still a PBR assembly
    sync_before = pair.replicas[0].composite.component("syncBefore")
    assert type(sync_before.implementation).__name__ == "PbrSyncBefore"
    # the reply log (common part) survived too
    assert pair.replicas[0].composite.has("replyLog")


def test_application_update_noop(setup):
    world, pair, engine, _client = setup

    def scenario():
        report = yield from engine.update_application("counter")
        return report

    report = world.run_process(scenario(), name="scenario")
    assert report.replicas == []
    assert pair.app == "counter"


def test_application_update_logged_for_recovery(setup):
    world, pair, engine, client = setup
    pair.enable_recovery(restart_delay=300.0)

    def scenario():
        yield from client.request(("add", 5))
        yield from engine.update_application("counter-v2")
        # crash the backup; it must come back with the NEW app version
        world.cluster.node("beta").crash()
        from repro.kernel import Timeout

        yield Timeout(8_000.0)

    world.run_process(scenario(), name="scenario")
    assert pair.logged_configuration()["app"] == "counter-v2"
    beta = pair.replica_on("beta")
    assert beta.alive
    server = beta.composite.component("server").implementation
    assert type(server.application).__name__ == "CounterServerV2"
