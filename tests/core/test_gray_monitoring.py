"""Tests for the latency-percentile probe and threshold hysteresis.

Covers the gray-failure instrument stack bottom-up: the byte-
deterministic ``LatencyDigest``, the ``node-limping`` trigger with its
sustain debounce and hysteresis band, slow-vs-dead discrimination at the
probe level (a *down* node is the crash detector's business, never the
limping probe's), and the classic probes' hysteresis (bandwidth band,
CPU sustain debounce).
"""

from repro.core.monitoring import LatencyDigest, MonitoringEngine, Thresholds
from repro.core.parameters import FaultClass
from repro.core.transition_graph import EVENTS, GRAY_EVENTS, event
from repro.kernel import Timeout, World


def make_world(seed=50):
    world = World(seed=seed)
    world.add_nodes(["alpha", "beta", "client"])
    return world


def feed(world, latency_ms, count, gap_ms=40.0, node="alpha"):
    """A driver that records served requests at a fixed latency."""
    for index in range(count):
        world.trace.record("ftm", "request_served", node=node,
                           request_id=index, latency_ms=latency_ms)
        yield Timeout(gap_ms)


def limp_events(monitoring, name):
    return [t for t in monitoring.trigger_history if t.event == name]


# -- LatencyDigest -----------------------------------------------------------------


def test_digest_quantiles_are_bucket_edges():
    digest = LatencyDigest(window_ms=1_000.0)
    for latency in (1.0, 2.0, 3.0, 30.0):
        digest.observe(0.0, latency)
    # a quantile is always one of the fixed geometric edges
    assert digest.quantile(0.5) in LatencyDigest.EDGES
    assert digest.quantile(0.99) in LatencyDigest.EDGES
    assert digest.quantile(0.99) >= 32.0  # the 30 ms tail lands at edge 32


def test_digest_empty_returns_none():
    digest = LatencyDigest(window_ms=1_000.0)
    assert digest.quantile(0.99) is None


def test_digest_evicts_outside_window():
    digest = LatencyDigest(window_ms=100.0)
    digest.observe(0.0, 50.0)
    digest.observe(90.0, 1.0)
    assert digest.quantile(0.99, now=90.0) >= 64.0
    # the 50 ms observation ages out; only the 1 ms one remains
    assert digest.quantile(0.99, now=150.0) < 2.0
    assert digest.total == 1


def test_digest_identical_for_identical_streams():
    a = LatencyDigest(window_ms=500.0)
    b = LatencyDigest(window_ms=500.0)
    stream = [(t * 10.0, 3.0 + (t % 7)) for t in range(100)]
    for now, latency in stream:
        a.observe(now, latency)
        b.observe(now, latency)
    assert a.quantile(0.5) == b.quantile(0.5)
    assert a.quantile(0.99) == b.quantile(0.99)
    assert a._counts == b._counts


def test_digest_rejects_non_positive_window():
    try:
        LatencyDigest(window_ms=0.0)
    except ValueError:
        pass
    else:  # pragma: no cover - the assertion documents intent
        raise AssertionError("window_ms=0 must be rejected")


# -- the limping trigger ------------------------------------------------------------


def test_limping_trigger_latches_clears_and_rearms():
    world = make_world()
    monitoring = MonitoringEngine(world, ["alpha", "beta"], period=100.0)
    monitoring.start()

    def scenario():
        yield from feed(world, 5.0, 20)    # healthy baseline
        yield from feed(world, 30.0, 50)   # limp: p99 -> 32 > 25
        yield from feed(world, 15.0, 60)   # hysteresis band: 10 < 16 < 25
        yield from feed(world, 5.0, 60)    # recovery: p99 -> 5.66 < 10
        yield from feed(world, 30.0, 50)   # limp again: re-armed trigger

    world.run_process(scenario(), name="driver")
    assert len(limp_events(monitoring, "node-limping")) == 2
    assert len(limp_events(monitoring, "node-recovered")) == 1
    assert monitoring.limping_nodes() == ["alpha"]


def test_limping_trigger_stays_latched_inside_band():
    world = make_world()
    monitoring = MonitoringEngine(world, ["alpha", "beta"], period=100.0)
    monitoring.start()

    def scenario():
        yield from feed(world, 30.0, 50)   # latch
        yield from feed(world, 15.0, 80)   # in-band: no clear, no re-fire

    world.run_process(scenario(), name="driver")
    assert len(limp_events(monitoring, "node-limping")) == 1
    assert len(limp_events(monitoring, "node-recovered")) == 0
    assert monitoring.limping_nodes() == ["alpha"]


def test_short_spike_is_debounced_by_sustain():
    world = make_world()
    thresholds = Thresholds(limp_sustain_samples=3, latency_window_ms=500.0)
    monitoring = MonitoringEngine(world, ["alpha", "beta"], period=200.0,
                                  thresholds=thresholds)
    monitoring.start()

    def scenario():
        yield from feed(world, 30.0, 6, gap_ms=50.0)  # 300 ms spike
        yield Timeout(1_500.0)  # silence: the window drains before 3 samples

    world.run_process(scenario(), name="driver")
    assert limp_events(monitoring, "node-limping") == []


def test_down_node_is_never_judged_limping():
    world = make_world()
    monitoring = MonitoringEngine(world, ["alpha", "beta"], period=100.0)
    monitoring.start()

    def scenario():
        yield from feed(world, 30.0, 5, gap_ms=40.0)
        world.cluster.node("alpha").crash()  # dead, not slow
        yield Timeout(1_000.0)

    world.run_process(scenario(), name="driver")
    # the digest is hot, but a down node belongs to the crash detector
    assert limp_events(monitoring, "node-limping") == []
    assert monitoring.limping_nodes() == []


def test_quiet_node_needs_min_requests_before_judgement():
    world = make_world()
    monitoring = MonitoringEngine(world, ["alpha", "beta"], period=100.0)
    monitoring.start()

    def scenario():
        # fewer observations than latency_min_requests: never judged
        yield from feed(world, 30.0, 3, gap_ms=10.0)
        yield Timeout(1_000.0)

    world.run_process(scenario(), name="driver")
    assert limp_events(monitoring, "node-limping") == []


# -- classic probe hysteresis (bandwidth band, CPU sustain) -------------------------


def test_bandwidth_oscillation_inside_band_does_not_retrigger():
    world = make_world()
    monitoring = MonitoringEngine(world, ["alpha", "beta"])
    monitoring.start()
    world.network.set_link("alpha", "beta", bandwidth=500.0)  # drop fires
    world.run(until=world.now + 600.0)
    for _ in range(3):  # oscillate inside the [low, high] band
        world.network.set_link("alpha", "beta", bandwidth=5_000.0)
        world.run(until=world.now + 600.0)
        world.network.set_link("alpha", "beta", bandwidth=500.0)
        world.run(until=world.now + 600.0)
    drops = [t for t in monitoring.trigger_history
             if t.event == "bandwidth-drop"]
    ups = [t for t in monitoring.trigger_history
           if t.event == "bandwidth-increase"]
    assert len(drops) == 1  # scarce state latched across the band
    assert ups == []
    world.network.set_link("alpha", "beta", bandwidth=9_000.0)
    world.run(until=world.now + 600.0)
    ups = [t for t in monitoring.trigger_history
           if t.event == "bandwidth-increase"]
    assert len(ups) == 1  # only the above-band recovery clears


def test_cpu_trigger_requires_consecutive_saturated_samples():
    world = make_world()
    thresholds = Thresholds(cpu_sustain_samples=3)
    monitoring = MonitoringEngine(world, ["alpha"], period=100.0,
                                  thresholds=thresholds)
    node = world.cluster.node("alpha")
    monitoring._last_busy["alpha"] = node.busy_ms

    def hot():
        node.busy_ms += 95.0  # utilisation 0.95 > 0.85
        monitoring._sample()

    def cool():
        monitoring._sample()  # no new busy time: utilisation 0

    hot(), hot(), cool(), hot(), hot()  # a cool sample breaks the streak
    assert [t for t in monitoring.trigger_history
            if t.event == "cpu-drop"] == []
    hot()  # third consecutive saturated sample
    drops = [t for t in monitoring.trigger_history if t.event == "cpu-drop"]
    assert len(drops) == 1
    cool()  # recovery emits exactly one increase
    ups = [t for t in monitoring.trigger_history
           if t.event == "cpu-increase"]
    assert len(ups) == 1


# -- the gray parameter events ------------------------------------------------------


def test_gray_events_are_separate_from_the_scenario_vocabulary():
    gray_names = {e.name for e in GRAY_EVENTS}
    assert gray_names == {"node-limping", "node-recovered"}
    assert gray_names.isdisjoint({e.name for e in EVENTS})


def test_gray_events_resolve_and_toggle_limp_requirement():
    limping = event("node-limping")
    recovered = event("node-recovered")
    assert limping.detection == "probe"
    assert recovered.detection == "probe"
    from repro.core.parameters import SystemContext

    context = SystemContext()
    assert not context.ft.requires(FaultClass.LIMP)
    context = limping.apply(context)
    assert context.ft.requires(FaultClass.LIMP)
    context = recovered.apply(context)
    assert not context.ft.requires(FaultClass.LIMP)
