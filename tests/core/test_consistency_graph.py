"""Tests for the (FT, A, R) model, FTM selection, and the transition graphs."""

import pytest

from repro.core import (
    FaultClass,
    NoValidFTM,
    build_scenario_graph,
    evaluate_ftm,
    figure2_graph,
    is_consistent,
    rank_ftms,
    select_ftm,
    select_target,
    transition_necessity,
)
from repro.core.transition_graph import EVENTS, _ctx, event
from repro.ftm import FTM_NAMES


def ctx(**kwargs):
    return _ctx(**kwargs)


# -- evaluate_ftm ------------------------------------------------------------------


def test_pbr_valid_for_default_context():
    report = evaluate_ftm("pbr", ctx())
    assert report.valid and report.preferred


def test_lfr_invalid_for_non_deterministic_app():
    report = evaluate_ftm("lfr", ctx(deterministic=False))
    assert not report.valid
    assert any("non-deterministic" in r for r in report.reasons)


def test_pbr_invalid_without_state_access():
    report = evaluate_ftm("pbr", ctx(state_accessible=False))
    assert not report.valid
    assert any("state access" in r for r in report.reasons)


def test_pbr_degraded_on_low_bandwidth():
    report = evaluate_ftm("pbr", ctx(bandwidth_ok=False))
    assert report.valid
    assert report.degraded
    assert not report.preferred


def test_lfr_degraded_on_low_cpu():
    report = evaluate_ftm("lfr", ctx(cpu_ok=False))
    assert report.degraded


def test_pbr_does_not_cover_transient_faults():
    report = evaluate_ftm(
        "pbr", ctx(fault_classes=(FaultClass.CRASH, FaultClass.TRANSIENT_VALUE))
    )
    assert not report.valid


def test_only_a_duplex_covers_permanent_faults():
    context = ctx(
        fault_classes=(
            FaultClass.CRASH,
            FaultClass.TRANSIENT_VALUE,
            FaultClass.PERMANENT_VALUE,
        )
    )
    valid = [ftm for ftm in FTM_NAMES if evaluate_ftm(ftm, context).valid]
    assert sorted(valid) == ["a+lfr", "a+pbr"]


# -- selection -------------------------------------------------------------------------


def test_default_selection_is_pbr():
    assert select_ftm(ctx()).ftm == "pbr"


def test_selection_raises_when_no_generic_solution():
    with pytest.raises(NoValidFTM):
        select_ftm(ctx(deterministic=False, state_accessible=False))


def test_rank_orders_valid_before_invalid():
    ranked = rank_ftms(ctx(deterministic=False))
    valid_flags = [r.valid for r in ranked]
    assert valid_flags == sorted(valid_flags, reverse=True)


def test_select_target_prefers_differential_proximity():
    aging = ctx(fault_classes=(FaultClass.CRASH, FaultClass.TRANSIENT_VALUE))
    assert select_target("pbr", aging) == "pbr+tr"
    assert select_target("lfr", aging) == "lfr+tr"


def test_select_target_critical_phase_goes_a_duplex():
    critical = ctx(
        fault_classes=(
            FaultClass.CRASH,
            FaultClass.TRANSIENT_VALUE,
            FaultClass.PERMANENT_VALUE,
        )
    )
    assert select_target("pbr", critical) == "a+pbr"
    assert select_target("lfr", critical) in ("a+lfr", "a+pbr")


def test_select_target_none_for_impossible_context():
    assert select_target("pbr", ctx(deterministic=False, state_accessible=False)) is None


def test_transition_necessity_classes():
    assert transition_necessity("pbr", ctx()) == "none"
    assert transition_necessity("pbr", ctx(bandwidth_ok=False)) == "mandatory"
    assert transition_necessity("pbr", ctx(state_accessible=False)) == "mandatory"


def test_is_consistent():
    assert is_consistent("pbr", ctx())
    assert not is_consistent("pbr", ctx(state_accessible=False))


# -- Figure 2 graph ---------------------------------------------------------------------


def test_figure2_graph_structure():
    graph = figure2_graph()
    assert set(graph) == {"pbr", "lfr", "pbr+tr", "lfr+tr", "a+duplex"}
    neighbours = dict(graph["pbr"])
    assert "lfr" in neighbours
    assert neighbours["lfr"] == frozenset({"A", "R"})
    assert neighbours["pbr+tr"] == frozenset({"FT"})
    # symmetric
    assert ("pbr", frozenset({"A", "R"})) in graph["lfr"]


# -- Figure 8 scenario graph ------------------------------------------------------------------


@pytest.fixture(scope="module")
def scenario():
    states, edges = build_scenario_graph()
    return states, edges


def test_scenario_states_cover_figure8(scenario):
    states, _edges = scenario
    labels = {s.label for s in states}
    assert labels == {
        "pbr (determinism)",
        "pbr (non-determinism)",
        "lfr (state access)",
        "lfr (no state access)",
        "lfr+tr",
        "pbr+tr",  # closes the graph (see transition_graph.scenario_states)
        "a+duplex",
        "no-generic-solution",
    }


def edge_set(edges, **filters):
    out = []
    for e in edges:
        if all(getattr(e, k) == v for k, v in filters.items()):
            out.append(e)
    return out


def test_bandwidth_drop_forces_pbr_to_lfr(scenario):
    _states, edges = scenario
    found = edge_set(
        edges, source="pbr (determinism)", event="bandwidth-drop"
    )
    assert len(found) == 1
    assert found[0].target == "lfr (state access)"
    assert found[0].kind == "mandatory"
    assert found[0].detection == "probe"
    assert found[0].nature == "reactive"


def test_state_access_loss_forces_pbr_to_lfr(scenario):
    _states, edges = scenario
    found = edge_set(
        edges, source="pbr (determinism)", event="state-access-loss"
    )
    assert found and found[0].target == "lfr (no state access)"
    assert found[0].kind == "mandatory"
    assert found[0].detection == "manager"


def test_hardware_aging_is_proactive_lfr_to_lfr_tr(scenario):
    _states, edges = scenario
    found = edge_set(edges, source="lfr (state access)", event="hardware-aging")
    assert found and found[0].target == "lfr+tr"
    assert found[0].kind == "mandatory"
    assert found[0].nature == "proactive"


def test_non_determinism_without_state_is_no_generic_solution(scenario):
    _states, edges = scenario
    found = edge_set(
        edges,
        source="pbr (non-determinism)",
        event="state-access-loss",
    )
    assert found and found[0].target == "no-generic-solution"


def test_intra_ftm_edges_exist(scenario):
    _states, edges = scenario
    intra = edge_set(edges, kind="intra")
    pairs = {(e.source, e.target) for e in intra}
    assert ("pbr (determinism)", "pbr (non-determinism)") in pairs
    assert ("pbr (non-determinism)", "pbr (determinism)") in pairs
    assert ("lfr (state access)", "lfr (no state access)") in pairs


def test_bandwidth_increase_back_to_pbr_is_possible_only(scenario):
    _states, edges = scenario
    found = edge_set(
        edges, source="lfr (state access)", event="bandwidth-increase",
        target="pbr (determinism)",
    )
    assert found and found[0].kind == "possible"


def test_r_events_probe_detected_others_manager(scenario):
    _states, edges = scenario
    for e in edges:
        dimension = event(e.event).dimension
        if dimension == "R":
            assert e.detection == "probe"
        else:
            assert e.detection == "manager"


def test_ft_edges_are_proactive(scenario):
    _states, edges = scenario
    for e in edges:
        if event(e.event).dimension == "FT":
            assert e.nature == "proactive"
        else:
            assert e.nature == "reactive"


def test_all_events_have_inverses():
    from repro.core.stability import INVERSE_EVENTS

    names = {e.name for e in EVENTS}
    assert set(INVERSE_EVENTS) == names
    for name, inverse in INVERSE_EVENTS.items():
        assert INVERSE_EVENTS[inverse] == name
