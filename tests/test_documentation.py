"""Documentation gates: every public item carries a docstring.

Deliverable (e) of the reproduction brief: doc comments on every public
item.  This test walks the package and fails on any public module, class
or function without a docstring — so the guarantee cannot rot.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

EXEMPT_MODULES = set()


def _walk_modules():
    out = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name in EXEMPT_MODULES:
            continue
        out.append(info.name)
    return sorted(out)


ALL_MODULES = _walk_modules()


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), f"{module_name} lacks a docstring"


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_public_items_have_docstrings(module_name):
    module = importlib.import_module(module_name)
    missing = []
    for name, item in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(item) or inspect.isfunction(item)):
            continue
        if getattr(item, "__module__", None) != module_name:
            continue  # re-export; documented at its definition site
        if not (item.__doc__ and item.__doc__.strip()):
            missing.append(name)
        if inspect.isclass(item):
            for method_name, method in vars(item).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                if not (method.__doc__ and method.__doc__.strip()):
                    # inherited docstrings count: check the MRO
                    inherited = None
                    for base in item.__mro__[1:]:
                        candidate = getattr(base, method_name, None)
                        if candidate is not None and candidate.__doc__:
                            inherited = candidate.__doc__
                            break
                    if not inherited:
                        missing.append(f"{name}.{method_name}")
    assert not missing, f"{module_name}: missing docstrings on {missing}"


def test_readme_and_design_docs_exist():
    from pathlib import Path

    root = Path(repro.__file__).resolve().parents[2]
    for doc in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
        path = root / doc
        assert path.exists(), f"{doc} missing"
        assert len(path.read_text()) > 1_000, f"{doc} suspiciously short"
