"""Tests for the extension patterns: Recovery Blocks, TMR, NVP."""

import pytest

from repro.patterns import (
    TMR,
    AcceptanceTestFailed,
    CounterServer,
    FlakyServer,
    NVersionProgramming,
    PatternError,
    RecoveryBlocks,
    Request,
    UnmaskedFaultError,
    majority_voter,
    median_voter,
)


def request(request_id, payload=("add", 1), client="c1"):
    return Request(request_id=request_id, client=client, payload=payload)


# -- Recovery Blocks ----------------------------------------------------------


def accept_exact(server):
    def test(_request, result):
        return result == server.inner.total

    return test


def test_rb_primary_passes():
    server = FlakyServer()
    rb = RecoveryBlocks(server, acceptance_test=accept_exact(server))
    reply = rb.handle_request(request(1, ("add", 5)))
    assert reply.value == 5
    assert rb.primary_failures == 0


def test_rb_alternate_rescues_failed_primary():
    server = FlakyServer()
    shadow_total = {"value": 0}

    def alternate(payload):
        # diversified implementation of the same function
        shadow_total["value"] = server.inner.total + payload[1]
        server.inner.total = shadow_total["value"]
        return shadow_total["value"]

    def acceptance(_request, result):
        return result == server.inner.total and result not in (None,)

    rb = RecoveryBlocks(server, acceptance_test=acceptance, alternates=[alternate])
    server.fail_next(1)
    reply = rb.handle_request(request(1, ("add", 5)))
    assert reply.value == 5
    assert rb.primary_failures == 1
    assert rb.alternate_successes == 1


def test_rb_all_alternates_fail():
    server = FlakyServer()
    rb = RecoveryBlocks(
        server,
        acceptance_test=lambda _r, _v: False,
        alternates=[lambda payload: -1],
    )
    with pytest.raises(AcceptanceTestFailed):
        rb.handle_request(request(1, ("add", 5)))
    # state rolled back to the pre-request checkpoint
    assert server.inner.total == 0


def test_rb_acceptance_test_is_replaceable():
    """The paper's RB update scenario: swap the acceptance test brick."""
    server = FlakyServer()
    rb = RecoveryBlocks(server, acceptance_test=lambda _r, _v: True)
    rb.handle_request(request(1, ("add", 5)))
    rb.set_acceptance_test(lambda _r, v: isinstance(v, int) and v < 100)
    reply = rb.handle_request(request(2, ("add", 5)))
    assert reply.value == 10


def test_rb_requires_state_access():
    from repro.patterns import NonDeterministicServer

    with pytest.raises(PatternError):
        RecoveryBlocks(NonDeterministicServer(), acceptance_test=lambda r, v: True)


def test_rb_requires_acceptance_test():
    with pytest.raises(PatternError):
        RecoveryBlocks(FlakyServer())


# -- TMR -----------------------------------------------------------------------------


class Fixed(CounterServer):
    def __init__(self, value):
        super().__init__()
        self.value = value

    def process(self, payload):
        return self.value


def test_tmr_majority_masks_one_bad_channel():
    tmr = TMR(Fixed(7), channels=[Fixed(7), Fixed(999)])
    reply = tmr.handle_request(request(1))
    assert reply.value == 7
    assert tmr.masked_faults == 1


def test_tmr_no_majority_raises():
    tmr = TMR(Fixed(1), channels=[Fixed(2), Fixed(3)])
    with pytest.raises(UnmaskedFaultError):
        tmr.handle_request(request(1))


def test_tmr_needs_exactly_three_channels():
    with pytest.raises(PatternError, match="exactly 3"):
        TMR(Fixed(1), channels=[Fixed(2)])


def test_tmr_voter_is_replaceable():
    """The paper's TMR update scenario: swap the decision algorithm."""
    tmr = TMR(Fixed(10), channels=[Fixed(11), Fixed(12)])
    with pytest.raises(UnmaskedFaultError):
        tmr.handle_request(request(1))
    tmr.set_voter(median_voter)
    reply = tmr.handle_request(request(2))
    assert reply.value == 11  # mid-value select tolerates the divergence


def test_median_voter_rejects_unorderable():
    with pytest.raises(UnmaskedFaultError):
        median_voter([1, "a", None])


def test_majority_voter_handles_unhashable():
    assert majority_voter([[1], [1], [2]]) == [1]


# -- NVP ------------------------------------------------------------------------------


def test_nvp_votes_across_versions():
    nvp = NVersionProgramming(Fixed(5), versions=[Fixed(5), Fixed(6)])
    reply = nvp.handle_request(request(1))
    assert reply.value == 5
    assert nvp.disagreements == 1


def test_nvp_needs_two_versions():
    with pytest.raises(PatternError, match="at least 2"):
        NVersionProgramming(Fixed(5))


def test_nvp_unanimous_no_disagreement():
    nvp = NVersionProgramming(Fixed(5), versions=[Fixed(5), Fixed(5)])
    nvp.handle_request(request(1))
    assert nvp.disagreements == 0
