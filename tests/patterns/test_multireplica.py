"""Tests for the N-replica group generalisations of PBR and LFR."""

import pytest

from repro.patterns import CounterServer, NoPeerError, Request, Role
from repro.patterns.multireplica import GroupLFR, GroupPBR, make_group


def request(request_id, payload=("add", 1), client="c1"):
    return Request(request_id=request_id, client=client, payload=payload)


def test_group_needs_two_members():
    with pytest.raises(NoPeerError):
        make_group(GroupPBR, CounterServer, size=1)


def test_group_pbr_checkpoints_fan_out():
    master, slaves, _link = make_group(GroupPBR, CounterServer, size=4)
    for i in range(1, 4):
        master.handle_request(request(i, ("add", 10)))
    assert master.backup_count == 3
    for slave in slaves:
        assert slave.server.total == 30  # every backup tracked the state


def test_group_pbr_tolerates_n_minus_one_crashes():
    master, slaves, link = make_group(GroupPBR, CounterServer, size=4)
    reply = master.handle_request(request(1, ("add", 5)))
    # kill the primary and then two of the three backups, one by one
    link.crash(master)
    first_successor = link.master
    assert first_successor.role == Role.MASTER
    replay = first_successor.handle_request(request(1, ("add", 5)))
    assert replay.replayed and replay.value == reply.value

    link.crash(link.master)
    link.crash(link.master)
    last = link.master
    assert last.role == Role.MASTER
    assert last.master_alone
    final = last.handle_request(request(2, ("add", 5)))
    assert final.value == 10  # state carried through three promotions


def test_group_lfr_all_followers_compute():
    master, slaves, _link = make_group(GroupLFR, CounterServer, size=3)
    for i in range(1, 4):
        master.handle_request(request(i, ("add", 2)))
    assert master.follower_count == 2
    for slave in slaves:
        assert slave.server.total == 6
        assert slave.server.processed == 3  # active replication everywhere


def test_group_lfr_promotion_commits_stash():
    master, slaves, link = make_group(GroupLFR, CounterServer, size=3)
    # forward reaches followers, notify does not (leader dies in between):
    # simulate by delivering a raw forward to the group
    from repro.patterns import PeerMessage

    for slave in slaves:
        slave.on_peer_message(
            PeerMessage(kind="request", request_id=9,
                        body={"client": "c1", "payload": ("add", 4)})
        )
    link.crash(master)
    successor = link.master
    replay = successor.handle_request(request(9, ("add", 4)))
    assert replay.replayed
    assert successor.server.total == 4


def test_group_survivors_stay_consistent_after_promotion():
    master, slaves, link = make_group(GroupLFR, CounterServer, size=4)
    master.handle_request(request(1, ("add", 3)))
    link.crash(master)
    successor = link.master
    successor.handle_request(request(2, ("add", 3)))
    for member in [successor] + link.live_slaves():
        assert member.server.total == 6


def test_group_pbr_metadata():
    assert GroupPBR.NAME == "group-pbr"
    assert GroupPBR.REQUIRES_STATE_ACCESS is True
    assert GroupLFR.HANDLES_NON_DETERMINISM is False
