"""Tests for the encryption mixin (the Sec. 8 generality claim)."""

import pytest

from repro.patterns import PBR, CounterServer, LocalLink, Request, Role
from repro.patterns.nonfunctional import (
    EncryptedChannel,
    TamperedMessageError,
    seal,
    unseal,
)

KEY = b"ground-segment-key"


class SecurePBR(EncryptedChannel, PBR):
    """Composition by class statement — the same trick as PBR_TR."""

    NAME = "secure-pbr"


def secure_pair():
    master = SecurePBR(CounterServer(), key=KEY, role=Role.MASTER)
    slave = SecurePBR(CounterServer(), key=KEY, role=Role.SLAVE)
    LocalLink(master, slave)
    return master, slave


# -- the toy AEAD itself -----------------------------------------------------


def test_seal_unseal_roundtrip():
    for payload in [("add", 5), "text", 42, [1, 2], None]:
        assert unseal(KEY, seal(KEY, 7, payload)) == payload


def test_unseal_detects_tampering():
    nonce, ciphertext, mac = seal(KEY, 7, ("add", 5))
    corrupted = bytes([ciphertext[0] ^ 1]) + ciphertext[1:]
    with pytest.raises(TamperedMessageError):
        unseal(KEY, (nonce, corrupted, mac))


def test_unseal_detects_wrong_key():
    sealed = seal(KEY, 7, ("add", 5))
    with pytest.raises(TamperedMessageError):
        unseal(b"wrong", sealed)


def test_different_nonces_different_ciphertexts():
    _n1, c1, _m1 = seal(KEY, 1, ("add", 5))
    _n2, c2, _m2 = seal(KEY, 2, ("add", 5))
    assert c1 != c2


# -- composition with an FTM ---------------------------------------------------------


def test_secure_pbr_end_to_end():
    master, slave = secure_pair()
    request = Request(1, "client", seal(KEY, 1, ("add", 5)))
    reply = master.handle_request(request)
    # the reply value travels sealed; the client opens it
    assert master.open_reply(reply) == 5
    # replication still works underneath: the backup got the checkpoint
    assert slave.server.total == 5


def test_secure_pbr_rejects_tampered_requests():
    master, _slave = secure_pair()
    nonce, ciphertext, mac = seal(KEY, 1, ("add", 5))
    bad = (nonce, ciphertext, b"\x00" * 32)
    with pytest.raises(TamperedMessageError):
        master.handle_request(Request(1, "client", bad))
    assert master.rejected_messages == 1
    assert master.server.total == 0  # nothing executed


def test_secure_pbr_at_most_once_still_holds():
    master, _slave = secure_pair()
    request = Request(1, "client", seal(KEY, 1, ("add", 5)))
    first = master.handle_request(request)
    replay = master.handle_request(request)
    assert replay.replayed
    assert master.open_reply(replay) == master.open_reply(first) == 5
    assert master.server.total == 5


def test_mro_places_encryption_outside_replication():
    names = [cls.__name__ for cls in SecurePBR.__mro__]
    assert names.index("EncryptedChannel") < names.index("PBR")
