"""Behavioural tests of PBR and LFR, including crash/recovery semantics."""

import pytest

from repro.patterns import (
    LFR,
    PBR,
    CounterServer,
    LocalLink,
    NonDeterministicServer,
    PatternError,
    Request,
    Role,
)


def request(request_id, payload=("add", 1), client="c1"):
    return Request(request_id=request_id, client=client, payload=payload)


def pbr_pair():
    master = PBR(CounterServer(), role=Role.MASTER, name="primary")
    slave = PBR(CounterServer(), role=Role.SLAVE, name="backup")
    link = LocalLink(master, slave)
    return master, slave, link


def lfr_pair():
    master = LFR(CounterServer(), role=Role.MASTER, name="leader")
    slave = LFR(CounterServer(), role=Role.SLAVE, name="follower")
    link = LocalLink(master, slave)
    return master, slave, link


# -- PBR ------------------------------------------------------------------------


def test_pbr_backup_state_follows_primary():
    master, slave, _link = pbr_pair()
    for i in range(1, 4):
        master.handle_request(request(i, ("add", 10)))
    assert master.server.total == 30
    assert slave.server.total == 30
    assert master.checkpoints_sent == 3
    assert slave.checkpoints_applied == 3


def test_pbr_backup_never_computes():
    compute_calls = {"master": 0, "backup": 0}

    class Instrumented(CounterServer):
        def __init__(self, tag):
            super().__init__()
            self.tag = tag

        def process(self, payload):
            compute_calls[self.tag] += 1
            return super().process(payload)

    master = PBR(Instrumented("master"), role=Role.MASTER)
    slave = PBR(Instrumented("backup"), role=Role.SLAVE)
    LocalLink(master, slave)
    master.handle_request(request(1, ("add", 10)))
    # state came via checkpoint, not via computation on the backup
    assert compute_calls == {"master": 1, "backup": 0}
    assert slave.server.total == 10


def test_pbr_accepts_non_deterministic_application():
    # PBR protects non-deterministic apps as long as they expose state.
    # CounterServer stands in; the class-level gate is what matters:
    assert PBR.HANDLES_NON_DETERMINISM is True


def test_pbr_requires_state_manager_instance():
    with pytest.raises(PatternError, match="state access"):
        PBR(NonDeterministicServer(), role=Role.MASTER)


def test_pbr_crash_failover_preserves_state_and_replies():
    master, slave, link = pbr_pair()
    reply1 = master.handle_request(request(1, ("add", 7)))
    # primary crashes
    link.break_()
    slave.peer_failed()
    assert slave.role == Role.MASTER
    # retransmitted request is replayed from the checkpointed log
    replay = slave.handle_request(request(1, ("add", 7)))
    assert replay.value == reply1.value == 7
    assert replay.replayed
    # new requests continue from the checkpointed state
    reply2 = slave.handle_request(request(2, ("add", 3)))
    assert reply2.value == 10


def test_pbr_master_alone_stops_checkpointing():
    master, _slave, link = pbr_pair()
    link.break_()
    master.peer_failed()
    master.handle_request(request(1, ("add", 1)))
    assert master.checkpoints_sent == 0


# -- LFR --------------------------------------------------------------------------


def test_lfr_both_replicas_compute():
    master, slave, _link = lfr_pair()
    for i in range(1, 4):
        master.handle_request(request(i, ("add", 5)))
    assert master.server.total == 15
    assert slave.server.total == 15
    assert master.server.processed == 3
    assert slave.server.processed == 3  # active replication


def test_lfr_follower_commits_on_notify():
    master, slave, _link = lfr_pair()
    master.handle_request(request(1, ("add", 5)))
    assert ("c1", 1) in slave.reply_log
    assert slave.reply_log[("c1", 1)].value == 5


def test_lfr_duplicate_forward_ignored():
    master, slave, _link = lfr_pair()
    master.handle_request(request(1, ("add", 5)))
    from repro.patterns import PeerMessage

    slave.on_peer_message(
        PeerMessage(kind="request", request_id=1, body={"client": "c1", "payload": ("add", 5)})
    )
    assert slave.server.total == 5  # not applied twice


def test_lfr_crash_failover_at_most_once():
    master, slave, link = lfr_pair()
    reply1 = master.handle_request(request(1, ("add", 4)))
    link.break_()
    slave.peer_failed()
    replay = slave.handle_request(request(1, ("add", 4)))
    assert replay.replayed
    assert replay.value == reply1.value
    assert slave.server.total == 4


def test_lfr_promotion_commits_uncommitted():
    master, slave, _link = lfr_pair()
    # deliver the forward but not the notify (leader crashed in between)
    from repro.patterns import PeerMessage

    slave.on_peer_message(
        PeerMessage(kind="request", request_id=9, body={"client": "c1", "payload": ("add", 2)})
    )
    slave.peer_failed()
    replay = slave.handle_request(request(9, ("add", 2)))
    assert replay.replayed  # committed at promotion, not recomputed
    assert slave.server.total == 2


def test_lfr_notify_without_request_is_ignored():
    _master, slave, _link = lfr_pair()
    from repro.patterns import PeerMessage

    slave.on_peer_message(
        PeerMessage(kind="notify", request_id=3, body={"client": "c1"})
    )
    assert ("c1", 3) not in slave.reply_log


def test_lfr_determinism_divergence_demonstrated():
    """Why LFR demands determinism: divergent replicas after active replication."""
    master = LFR(NonDeterministicServer(seed=1), role=Role.MASTER)
    slave = LFR(NonDeterministicServer(seed=2), role=Role.SLAVE)
    LocalLink(master, slave)
    reply = master.handle_request(request(1, "draw"))
    follower_value = slave.reply_log[("c1", 1)].value
    assert reply.value != follower_value  # replicas diverged -> LFR invalid
    ok, _ = LFR.accepts_application(NonDeterministicServer)
    assert not ok  # and the A-gate rejects exactly this


def test_lfr_works_without_state_access():
    assert LFR.REQUIRES_STATE_ACCESS is False
    # LFR happily protects a server with no StateManager implementation
    master = LFR(NonDeterministicServer(seed=1), role=Role.MASTER)
    assert master is not None
