"""Tests for the generic execution scheme, at-most-once, and duplex core."""

import pytest

from repro.patterns import (
    LFR,
    PBR,
    CounterServer,
    FaultToleranceProtocol,
    LocalLink,
    NonDeterministicServer,
    NoPeerError,
    NotMasterError,
    Request,
    Role,
)


class PlainProtocol(FaultToleranceProtocol):
    """Concrete no-op FTM for testing the base skeleton."""

    NAME = "plain"

    def __init__(self, server, **kwargs):
        super().__init__(server, **kwargs)
        self.calls = []

    def sync_before(self, request):
        self.calls.append("before")
        super().sync_before(request)

    def proceed(self, request):
        self.calls.append("proceed")
        return super().proceed(request)

    def sync_after(self, request, result):
        self.calls.append("after")
        return super().sync_after(request, result)


def request(request_id=1, payload=("add", 1), client="c1"):
    return Request(request_id=request_id, client=client, payload=payload)


# -- base skeleton ------------------------------------------------------------


def test_before_proceed_after_order():
    protocol = PlainProtocol(CounterServer())
    protocol.handle_request(request())
    assert protocol.calls == ["before", "proceed", "after"]


def test_reply_carries_result():
    protocol = PlainProtocol(CounterServer())
    reply = protocol.handle_request(request(payload=("add", 5)))
    assert reply.value == 5
    assert reply.request_id == 1
    assert not reply.replayed


def test_at_most_once_replays_from_log():
    server = CounterServer()
    protocol = PlainProtocol(server)
    first = protocol.handle_request(request(payload=("add", 5)))
    duplicate = protocol.handle_request(request(payload=("add", 5)))
    assert duplicate.value == first.value == 5
    assert duplicate.replayed
    assert server.total == 5  # processed exactly once


def test_at_most_once_is_per_client():
    server = CounterServer()
    protocol = PlainProtocol(server)
    protocol.handle_request(request(request_id=1, client="a", payload=("add", 1)))
    protocol.handle_request(request(request_id=1, client="b", payload=("add", 1)))
    assert server.total == 2


def test_unexpected_kwargs_rejected():
    with pytest.raises(TypeError, match="unexpected"):
        PlainProtocol(CounterServer(), bogus=1)


def test_characteristics_metadata():
    chars = PBR.characteristics()
    assert chars["name"] == "pbr"
    assert chars["fault_models"] == ("crash",)
    assert chars["requires_state_access"] is True
    assert chars["bandwidth"] == "high"
    assert chars["cpu"] == "low"


def test_execution_scheme_metadata():
    scheme = PBR.execution_scheme()
    assert scheme["PBR (Primary)"]["after"] == "Checkpoint to Backup"
    assert scheme["PBR (Backup)"]["proceed"] == "Nothing"


def test_accepts_application_determinism_gate():
    ok, _reason = LFR.accepts_application(NonDeterministicServer)
    assert not ok
    ok, _reason = PBR.accepts_application(CounterServer)
    assert ok


def test_accepts_application_state_access_gate():
    ok, reason = PBR.accepts_application(NonDeterministicServer)
    assert not ok
    assert "state access" in reason


# -- duplex core -------------------------------------------------------------------


def duplex_pair(cls=PBR, server_factory=CounterServer, **kwargs):
    master = cls(server_factory(), role=Role.MASTER, name="master", **kwargs)
    slave = cls(server_factory(), role=Role.SLAVE, name="slave", **kwargs)
    link = LocalLink(master, slave)
    return master, slave, link


def test_slave_rejects_client_requests():
    _master, slave, _link = duplex_pair()
    with pytest.raises(NotMasterError):
        slave.handle_request(request())


def test_send_without_link_raises():
    protocol = PBR(CounterServer(), role=Role.MASTER)
    from repro.patterns import PeerMessage

    with pytest.raises(NoPeerError):
        protocol.send_to_peer(PeerMessage(kind="checkpoint", request_id=1))


def test_unknown_peer_message_kind():
    master, slave, _link = duplex_pair()
    from repro.patterns import PeerMessage

    with pytest.raises(ValueError, match="cannot handle"):
        slave.on_peer_message(PeerMessage(kind="gibberish", request_id=1))


def test_slave_promotes_on_peer_failure():
    _master, slave, _link = duplex_pair()
    assert slave.role == Role.SLAVE
    slave.peer_failed()
    assert slave.role == Role.MASTER
    assert slave.master_alone
    assert slave.promotions == 1


def test_master_survives_peer_failure_alone():
    master, _slave, _link = duplex_pair()
    master.peer_failed()
    assert master.role == Role.MASTER
    assert master.master_alone
    # still serves requests, without checkpointing
    reply = master.handle_request(request(payload=("add", 2)))
    assert reply.value == 2


def test_peer_recovered_resumes_replication():
    master, _slave, link = duplex_pair()
    master.peer_failed()
    fresh_slave = PBR(CounterServer(), role=Role.SLAVE, name="slave2")
    new_link = LocalLink(master, fresh_slave)
    master.peer_recovered(new_link)
    assert not master.master_alone
    master.handle_request(request(payload=("add", 3)))
    assert fresh_slave.server.total == 3
