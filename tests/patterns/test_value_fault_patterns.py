"""Tests for TimeRedundancy, Assertion, and the composed FTMs."""

import pytest

from repro.patterns import (
    LFR_A,
    LFR_TR,
    PBR_A,
    PBR_TR,
    Assertion,
    AssertionFailedError,
    CounterServer,
    FlakyServer,
    LocalLink,
    NonDeterministicServer,
    PatternError,
    Request,
    Role,
    TimeRedundancy,
    UnmaskedFaultError,
)


def request(request_id, payload=("add", 1), client="c1"):
    return Request(request_id=request_id, client=client, payload=payload)


def counter_in_range(_request, result):
    """Safety assertion: the counter stays in a sane envelope."""
    return isinstance(result, int) and 0 <= result < 1000


# -- Time Redundancy -----------------------------------------------------------


def test_tr_clean_run_computes_twice():
    server = FlakyServer()
    protocol = TimeRedundancy(server)
    reply = protocol.handle_request(request(1, ("add", 5)))
    assert reply.value == 5
    assert protocol.executions == 2
    assert protocol.masked_faults == 0
    assert server.inner.total == 5  # state effects applied exactly once


def test_tr_masks_single_transient_fault():
    server = FlakyServer()
    protocol = TimeRedundancy(server)
    server.fail_next(1)  # corrupt exactly the first execution
    reply = protocol.handle_request(request(1, ("add", 5)))
    assert reply.value == 5
    assert protocol.executions == 3
    assert protocol.masked_faults == 1
    assert server.inner.total == 5


def test_tr_unmasked_when_all_executions_differ():
    class AlwaysDifferent(CounterServer):
        def __init__(self):
            super().__init__()
            self.calls = 0

        def process(self, payload):
            self.calls += 1
            return self.calls * 1000  # never agrees

    protocol = TimeRedundancy(AlwaysDifferent())
    with pytest.raises(UnmaskedFaultError):
        protocol.handle_request(request(1, ("add", 1)))


def test_tr_requires_state_manager():
    with pytest.raises(PatternError, match="state access"):
        TimeRedundancy(NonDeterministicServer())


def test_tr_state_restored_between_executions():
    server = FlakyServer()
    protocol = TimeRedundancy(server)
    protocol.handle_request(request(1, ("add", 3)))
    protocol.handle_request(request(2, ("add", 4)))
    # without restore-between-executions the total would be 14, not 7
    assert server.inner.total == 7


# -- Assertion (standalone) -----------------------------------------------------------


def test_assertion_passes_good_results_through():
    protocol = Assertion(FlakyServer(), assertion=counter_in_range)
    reply = protocol.handle_request(request(1, ("add", 5)))
    assert reply.value == 5
    assert protocol.assertion_failures == 0


def test_assertion_requires_predicate():
    with pytest.raises(PatternError, match="safety"):
        Assertion(FlakyServer())


def test_assertion_recovers_locally_from_transient():
    server = FlakyServer()
    protocol = Assertion(server, assertion=counter_in_range)
    server.fail_next(1)  # 5 ^ 0x40 = 69 -> still in range! use a tighter assertion

    def tight(_request, result):
        return result == server.inner.total  # result must match true state

    protocol.assertion = tight
    server.fail_next(1)
    reply = protocol.handle_request(request(1, ("add", 5)))
    assert reply.value == 5
    assert protocol.assertion_failures == 1
    assert protocol.recoveries == 1


def test_assertion_gives_up_on_persistent_violation():
    server = FlakyServer()
    protocol = Assertion(server, assertion=lambda _r, _v: False)
    with pytest.raises(AssertionFailedError):
        protocol.handle_request(request(1, ("add", 5)))


# -- compositions ---------------------------------------------------------------------


def composed_pair(cls, **kwargs):
    master = cls(FlakyServer(), role=Role.MASTER, name="master", **kwargs)
    slave = cls(FlakyServer(), role=Role.SLAVE, name="slave", **kwargs)
    link = LocalLink(master, slave)
    return master, slave, link


def test_pbr_tr_masks_transient_and_checkpoints():
    master, slave, _link = composed_pair(PBR_TR)
    master.server.fail_next(1)
    reply = master.handle_request(request(1, ("add", 5)))
    assert reply.value == 5
    assert master.masked_faults == 1
    assert slave.server.capture_state()["total"] == 5  # checkpoint applied


def test_pbr_tr_crash_failover_still_works():
    master, slave, link = composed_pair(PBR_TR)
    master.handle_request(request(1, ("add", 5)))
    link.break_()
    slave.peer_failed()
    reply = slave.handle_request(request(2, ("add", 5)))
    assert reply.value == 10


def test_lfr_tr_follower_also_masks():
    master, slave, _link = composed_pair(LFR_TR)
    slave.server.fail_next(1)  # transient fault on the follower
    master.handle_request(request(1, ("add", 5)))
    assert slave.masked_faults == 1
    assert slave.reply_log[("c1", 1)].value == 5


def test_pbr_a_remote_reexecution_on_permanent_fault():
    master, slave, _link = composed_pair(PBR_A, assertion=counter_in_range)

    # permanent fault on the master: every computation corrupted out of range
    class Poisoned(FlakyServer):
        def process(self, payload):
            return 10_000  # always violates counter_in_range

    master.server = Poisoned()
    reply = master.handle_request(request(1, ("add", 5)))
    assert reply.value == 5  # result came from the backup's re-execution
    assert master.assertion_failures == 1
    assert master.recoveries == 1
    # master adopted the backup's state
    assert master.server.capture_state()["total"] == 5


def test_lfr_a_adopts_follower_result():
    master, slave, _link = composed_pair(LFR_A, assertion=counter_in_range)

    class Poisoned(FlakyServer):
        def process(self, payload):
            return 10_000

    master.server = Poisoned()
    reply = master.handle_request(request(1, ("add", 5)))
    assert reply.value == 5
    # follower computed once (on the forward), not twice
    assert slave.server.inner.processed == 1


def test_a_duplex_unrecoverable_when_both_sides_bad():
    master, slave, _link = composed_pair(PBR_A, assertion=lambda _r, _v: False)
    with pytest.raises(AssertionFailedError):
        master.handle_request(request(1, ("add", 5)))


def test_a_duplex_master_alone_falls_back_locally():
    master, _slave, link = composed_pair(PBR_A, assertion=counter_in_range)
    link.break_()
    master.peer_failed()

    flaky = master.server

    def tight(_request, result):
        return result == flaky.inner.total

    master.assertion = tight
    flaky.fail_next(1)
    reply = master.handle_request(request(1, ("add", 5)))
    assert reply.value == 5
    assert master.recoveries == 1


def test_composed_metadata_covers_union_of_fault_models():
    assert PBR_TR.FAULT_MODELS == frozenset({"crash", "transient_value"})
    assert PBR_A.FAULT_MODELS == frozenset(
        {"crash", "transient_value", "permanent_value"}
    )
    assert LFR_A.REQUIRES_STATE_ACCESS is False
    assert LFR_TR.REQUIRES_STATE_ACCESS is True


def test_mro_is_the_documented_composition_order():
    # TimeRedundancy specialises the scheme *around* PBR
    mro_names = [cls.__name__ for cls in PBR_TR.__mro__]
    assert mro_names.index("TimeRedundancy") < mro_names.index("PBR")
    assert mro_names.index("PBR") < mro_names.index("DuplexProtocol")
