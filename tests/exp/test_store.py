"""Result-store tests: round-trip, cache hits, invalidation, corruption."""

import json

from repro import exp
from repro.eval import figure9


def echo_trial(seed, params):
    """A trivial trial: echoes its inputs."""
    return {"seed": seed, "tag": params.get("tag")}


def _spec(**overrides):
    base = dict(
        name="echo",
        trial=echo_trial,
        trials=(
            exp.Trial("a", {"tag": "x"}, (1, 2)),
            exp.Trial("b", {"tag": "y"}, (3,)),
        ),
    )
    base.update(overrides)
    return exp.ExperimentSpec(**base)


def test_store_round_trip_serves_identical_results(tmp_path):
    store = exp.ResultStore(tmp_path)
    spec = _spec()
    first = exp.run(spec, jobs=1, store=store)
    second = exp.run(spec, jobs=4, store=store)
    assert not first.cached and first.executed == 3
    assert second.cached and second.executed == 0
    assert json.dumps(first.results) == json.dumps(second.results)


def test_store_round_trip_on_a_real_simulation(tmp_path):
    store = exp.ResultStore(tmp_path)
    spec = figure9.spec(runs=2)
    fresh = exp.run(spec, jobs=1, store=store)
    cached = exp.run(spec, jobs=1, store=store)
    assert cached.cached and cached.executed == 0
    assert figure9.from_results(fresh.results) == figure9.from_results(
        cached.results
    )


def test_spec_change_misses_the_cache(tmp_path):
    store = exp.ResultStore(tmp_path)
    exp.run(_spec(), jobs=1, store=store)
    for changed in (
        _spec(version="2"),
        _spec(trials=(exp.Trial("a", {"tag": "x"}, (9, 2)), exp.Trial("b", {"tag": "y"}, (3,)))),
    ):
        result = exp.run(changed, jobs=1, store=store)
        assert not result.cached and result.executed == 3


def test_invalidate_and_clear(tmp_path):
    store = exp.ResultStore(tmp_path)
    spec = _spec()
    exp.run(spec, jobs=1, store=store)
    assert store.path_for(spec).exists()
    assert store.invalidate(spec)
    assert not store.invalidate(spec)
    exp.run(spec, jobs=1, store=store)
    assert store.clear() == 1
    assert store.entries() == []


def test_fresh_forces_recomputation(tmp_path):
    store = exp.ResultStore(tmp_path)
    spec = _spec()
    exp.run(spec, jobs=1, store=store)
    forced = exp.run(spec, jobs=1, store=store, fresh=True)
    assert not forced.cached and forced.executed == 3


def test_corrupt_entry_is_recomputed_not_crashed(tmp_path):
    store = exp.ResultStore(tmp_path)
    spec = _spec()
    exp.run(spec, jobs=1, store=store)
    store.path_for(spec).write_text("{not json", encoding="utf-8")
    result = exp.run(spec, jobs=1, store=store)
    assert not result.cached and result.executed == 3
    # and the entry was rewritten cleanly
    assert exp.run(spec, jobs=1, store=store).cached


def test_entry_with_wrong_shape_is_ignored(tmp_path):
    store = exp.ResultStore(tmp_path)
    spec = _spec()
    path = exp.run(spec, jobs=1, store=store).results and store.path_for(spec)
    payload = json.loads(path.read_text(encoding="utf-8"))
    del payload["results"]["b"]
    path.write_text(json.dumps(payload), encoding="utf-8")
    assert store.load(spec) is None


def test_entries_digest(tmp_path):
    store = exp.ResultStore(tmp_path)
    exp.run(_spec(), jobs=1, store=store)
    (entry,) = store.entries()
    assert entry["spec"] == "echo"
    assert entry["cells"] == 2
    assert entry["hash"] == exp.spec_hash(_spec())
