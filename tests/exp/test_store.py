"""Result-store tests: cell layout, cache hits, legacy read-through, GC."""

import json

from repro import exp
from repro.eval import figure9
from repro.exp.store import MANIFEST_NAME


def echo_trial(seed, params):
    """A trivial trial: echoes its inputs."""
    return {"seed": seed, "tag": params.get("tag")}


def _spec(**overrides):
    base = dict(
        name="echo",
        trial=echo_trial,
        trials=(
            exp.Trial("a", {"tag": "x"}, (1, 2)),
            exp.Trial("b", {"tag": "y"}, (3,)),
        ),
    )
    base.update(overrides)
    return exp.ExperimentSpec(**base)


def test_store_round_trip_serves_identical_results(tmp_path):
    store = exp.ResultStore(tmp_path)
    spec = _spec()
    first = exp.run(spec, jobs=1, store=store)
    second = exp.run(spec, jobs=4, store=store)
    assert not first.cached and first.executed == 3
    assert second.cached and second.executed == 0
    assert second.cells_cached == 2
    assert json.dumps(first.results) == json.dumps(second.results)


def test_store_layout_is_one_file_per_cell_plus_manifest(tmp_path):
    store = exp.ResultStore(tmp_path)
    spec = _spec()
    exp.run(spec, jobs=1, store=store)
    spec_dir = store.spec_dir(spec)
    assert (spec_dir / MANIFEST_NAME).is_file()
    for trial in spec.trials:
        path = store.cell_path(spec, trial)
        assert path.parent == spec_dir
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["cell_hash"] == exp.cell_hash(spec, trial)
        assert len(payload["values"]) == trial.runs
    manifest = json.loads((spec_dir / MANIFEST_NAME).read_text(encoding="utf-8"))
    assert manifest["hash"] == exp.spec_hash(spec)
    assert set(manifest["cells"]) == {"a", "b"}


def test_store_round_trip_on_a_real_simulation(tmp_path):
    store = exp.ResultStore(tmp_path)
    spec = figure9.spec(runs=2)
    fresh = exp.run(spec, jobs=1, store=store)
    cached = exp.run(spec, jobs=1, store=store)
    assert cached.cached and cached.executed == 0
    assert figure9.from_results(fresh.results) == figure9.from_results(
        cached.results
    )


def test_spec_change_misses_the_cache(tmp_path):
    store = exp.ResultStore(tmp_path)
    exp.run(_spec(), jobs=1, store=store)
    for changed in (
        _spec(version="3"),
        _spec(trials=(exp.Trial("a", {"tag": "x"}, (9, 2)), exp.Trial("b", {"tag": "y"}, (3,)))),
    ):
        result = exp.run(changed, jobs=1, store=store)
        assert not result.cached


def test_one_cell_edit_recomputes_one_cell(tmp_path):
    store = exp.ResultStore(tmp_path)
    exp.run(_spec(), jobs=1, store=store)
    edited = _spec(
        trials=(exp.Trial("a", {"tag": "x"}, (1, 2)), exp.Trial("b", {"tag": "z"}, (3,)))
    )
    result = exp.run(edited, jobs=1, store=store)
    assert result.executed == 1  # only cell b's single run
    assert result.cells_cached == 1 and result.cells_executed == 1


def test_invalidate_and_clear(tmp_path):
    store = exp.ResultStore(tmp_path)
    spec = _spec()
    exp.run(spec, jobs=1, store=store)
    assert store.manifest_path(spec).exists()
    assert store.invalidate(spec)
    assert not store.invalidate(spec)
    assert store.load_cells(spec) == {}
    exp.run(spec, jobs=1, store=store)
    # 2 cell files + 1 manifest
    assert store.clear() == 3
    assert store.entries() == []


def test_fresh_forces_recomputation(tmp_path):
    store = exp.ResultStore(tmp_path)
    spec = _spec()
    exp.run(spec, jobs=1, store=store)
    forced = exp.run(spec, jobs=1, store=store, fresh=True)
    assert not forced.cached and forced.executed == 3


def test_corrupt_cell_is_recomputed_alone(tmp_path):
    store = exp.ResultStore(tmp_path)
    spec = _spec()
    exp.run(spec, jobs=1, store=store)
    store.cell_path(spec, spec.cell("a")).write_text("{not json",
                                                     encoding="utf-8")
    result = exp.run(spec, jobs=1, store=store)
    assert not result.cached
    assert result.executed == 2  # cell a only; b still served
    assert result.cells_cached == 1
    # and the entry was rewritten cleanly
    assert exp.run(spec, jobs=1, store=store).cached


def test_cell_with_wrong_shape_is_ignored(tmp_path):
    store = exp.ResultStore(tmp_path)
    spec = _spec()
    exp.run(spec, jobs=1, store=store)
    path = store.cell_path(spec, spec.cell("a"))
    payload = json.loads(path.read_text(encoding="utf-8"))
    payload["values"] = payload["values"][:1]  # one run missing
    path.write_text(json.dumps(payload), encoding="utf-8")
    assert store.load_cell(spec, spec.cell("a")) is None
    assert store.load(spec) is None  # whole-spec view refuses partials
    assert store.load_cells(spec) == {"b": [{"seed": 3, "tag": "y"}]}


def test_legacy_single_file_format_is_read_through(tmp_path):
    store = exp.ResultStore(tmp_path)
    spec = _spec()
    results = {
        "a": [{"seed": 1, "tag": "x"}, {"seed": 2, "tag": "x"}],
        "b": [{"seed": 3, "tag": "y"}],
    }
    legacy_payload = {
        "hash": exp.spec_hash(spec),
        "fingerprint": exp.fingerprint(spec),
        "meta": {},
        "results": results,
    }
    store.root.mkdir(parents=True, exist_ok=True)
    store.legacy_path_for(spec).write_text(json.dumps(legacy_payload),
                                           encoding="utf-8")
    served = exp.run(spec, jobs=1, store=store)
    assert served.cached and served.executed == 0
    assert served.results == results
    # read-through migrates the entry into cell files
    for trial in spec.trials:
        assert store.cell_path(spec, trial).is_file()


def test_stale_legacy_entry_is_ignored(tmp_path):
    store = exp.ResultStore(tmp_path)
    spec = _spec()
    store.root.mkdir(parents=True, exist_ok=True)
    store.legacy_path_for(spec).write_text(
        json.dumps({"hash": "0" * 64, "results": {}}), encoding="utf-8"
    )
    result = exp.run(spec, jobs=1, store=store)
    assert not result.cached and result.executed == 3


def test_gc_removes_orphans_but_keeps_resumable_cells(tmp_path):
    store = exp.ResultStore(tmp_path)
    spec = _spec()
    exp.run(spec, jobs=1, store=store)
    edited = _spec(
        trials=(exp.Trial("a", {"tag": "x"}, (1, 2)), exp.Trial("b", {"tag": "z"}, (3,)))
    )
    exp.run(edited, jobs=1, store=store)  # old cell b becomes an orphan
    assert store.gc() == 1
    # both current specs' latest cells survive gc where still referenced
    assert exp.run(edited, jobs=1, store=store).cached
    # a spec dir without a manifest (killed run) is never collected
    other = _spec(name="killed")
    store.save_cell(other, other.cell("a"), [{"seed": 1}, {"seed": 2}])
    assert store.gc() == 0
    assert store.cell_path(other, other.cell("a")).is_file()


def test_entries_digest(tmp_path):
    store = exp.ResultStore(tmp_path)
    exp.run(_spec(), jobs=1, store=store)
    (entry,) = store.entries()
    assert entry["spec"] == "echo"
    assert entry["cells"] == 2
    assert entry["hash"] == exp.spec_hash(_spec())
    assert entry["format"] == "cells"
