"""Executor-backend equivalence and persistent-pool behavior.

The backend contract: *where* units execute — inline, over the
persistent local pool, or on remote workers — is pure execution
strategy.  Results, and the bytes the store writes, are identical
across every backend.
"""

import hashlib
import json

import pytest

from repro import exp
from repro.eval import campaign, table3
from repro.exp import runner


def _dump(result):
    return json.dumps(result.results, sort_keys=True)


def _store_bytes(root):
    """SHA-256 of every cell file under ``root`` (manifests excluded:
    they record execution metadata like jobs/backend by design)."""
    digests = {}
    for path in sorted(root.rglob("*.json")):
        if path.name == "manifest.json":
            continue
        digests[str(path.relative_to(root))] = hashlib.sha256(
            path.read_bytes()
        ).hexdigest()
    return digests


def echo_trial(seed, params):
    return {"seed": seed, "cell": params["cell"]}


def _echo_spec(cells=6, runs=2):
    trials = tuple(
        exp.Trial(key=f"c{i}", params={"cell": i},
                  seeds=tuple(range(runs * i, runs * i + runs)))
        for i in range(cells)
    )
    return exp.ExperimentSpec(name="echo-backends", trial=echo_trial,
                              trials=trials)


def test_serial_and_local_backends_are_byte_identical():
    spec = table3.spec(runs=2, base_seed=11, ftms=("pbr", "lfr"))
    serial = exp.run(spec, jobs=1, backend="serial")
    local = exp.run(spec, jobs=3, backend="local", batch=2)
    assert _dump(serial) == _dump(local)
    assert serial.backend == "serial"
    assert local.backend == "local"


def test_backend_stores_are_byte_identical(tmp_path):
    spec = campaign.sharded_spec(missions=6, base_seed=77, requests=8,
                                 cell_size=3)
    serial_store = exp.ResultStore(tmp_path / "serial")
    local_store = exp.ResultStore(tmp_path / "local")
    exp.run(spec, jobs=1, backend="serial", store=serial_store)
    exp.run(spec, jobs=2, backend="local", batch=1, store=local_store)
    serial_bytes = _store_bytes(tmp_path / "serial")
    assert serial_bytes == _store_bytes(tmp_path / "local")
    assert serial_bytes  # non-empty: the cells really were written


def test_local_backend_coschedule_matches_serial():
    spec = campaign.sharded_spec(missions=8, base_seed=21, requests=6,
                                 cell_size=4)
    serial = exp.run(spec, jobs=1, backend="serial")
    cos = exp.run(spec, jobs=2, backend="local", coschedule=4,
                  coschedule_min_units=0)  # exercise the lane, not the clamp
    assert _dump(serial) == _dump(cos)


def test_backend_instance_can_be_passed_directly():
    spec = _echo_spec()
    result = exp.run(spec, backend=exp.SerialBackend())
    assert result.backend == "serial"
    assert result.executed == spec.unit_count


def test_unknown_backend_name_is_rejected():
    with pytest.raises(exp.ExperimentError, match="unknown backend"):
        exp.run(_echo_spec(), backend="carrier-pigeon")


def test_remote_backend_requires_worker_addresses():
    with pytest.raises(exp.ExperimentError, match="workers"):
        exp.run(_echo_spec(), backend="remote")


def test_workers_argument_implies_remote_backend():
    # a bad address fails in address parsing — proving backend selection
    with pytest.raises(exp.DistributedError, match="host:port"):
        exp.run(_echo_spec(), workers=["not-an-address"])


def test_local_pool_persists_across_runs():
    exp.shutdown_local_pool()
    try:
        spec_a = _echo_spec(cells=8)
        spec_b = table3.spec(runs=2, base_seed=5, ftms=("pbr",))
        exp.run(spec_a, jobs=2, backend="local", batch=1)
        first_pool = runner._LOCAL_POOL
        assert first_pool is not None
        exp.run(spec_b, jobs=2, backend="local", batch=1)
        assert runner._LOCAL_POOL is first_pool
        assert runner._LOCAL_POOL_REUSES >= 1
    finally:
        exp.shutdown_local_pool()


def test_local_pool_resizes_on_different_worker_count():
    exp.shutdown_local_pool()
    try:
        spec = _echo_spec(cells=8)
        exp.run(spec, jobs=2, backend="local", batch=1)
        first_pool = runner._LOCAL_POOL
        exp.run(spec, jobs=3, backend="local", batch=1)
        assert runner._LOCAL_POOL is not first_pool
        assert runner._LOCAL_POOL_PROCESSES == 3
    finally:
        exp.shutdown_local_pool()


def test_function_ref_roundtrip():
    ref = runner.function_ref(echo_trial)
    assert ref == f"{__name__}:echo_trial"
    assert runner.resolve_function_ref(ref) is echo_trial


def test_execution_plan_batches_preserve_unit_order():
    spec = _echo_spec(cells=5, runs=1)
    units = [(i, i * 10, {"cell": i}) for i in range(5)]
    plan = runner.ExecutionPlan(spec=spec, units=units, worker_count=2,
                                batch_size=2)
    batches = plan.batches()
    assert [len(b) for b in batches] == [2, 2, 1]
    assert [u[0] for b in batches for u in b] == list(range(5))


# -- cache_state coherence (the ExperimentResult.cached fix) ----------------


def test_cache_state_disabled_without_store():
    result = exp.run(_echo_spec())
    assert result.cache_state == "disabled"
    assert not result.cached


def test_cache_state_cold_then_full(tmp_path):
    store = exp.ResultStore(tmp_path)
    spec = _echo_spec(cells=3)
    first = exp.run(spec, store=store)
    assert first.cache_state == "cold"
    assert not first.cached
    assert first.cells_executed == 3
    second = exp.run(spec, store=store)
    assert second.cache_state == "full"
    assert second.cached
    assert second.cells_cached == 3
    assert second.executed == 0


def test_cache_state_partial_mixes_coherently(tmp_path):
    store = exp.ResultStore(tmp_path)
    small = _echo_spec(cells=2)
    exp.run(small, store=store)
    grown = _echo_spec(cells=4)  # two cells cached, two missing
    mixed = exp.run(grown, store=store)
    assert mixed.cache_state == "partial"
    assert not mixed.cached  # partially-cached runs must not claim "cached"
    assert mixed.cells_cached == 2
    assert mixed.cells_executed == 2
    summary = mixed.summary()
    assert summary["cache_state"] == "partial"
    assert summary["cells_cached"] == 2
    assert summary["cells_executed"] == 2
    assert summary["backend"] in exp.BACKENDS
