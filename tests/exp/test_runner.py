"""Determinism and merge-ordering tests for the parallel runner.

The acceptance bar of the experiment layer: ``run(spec, jobs=N)`` must be
byte-identical to ``run(spec, jobs=1)`` for real simulation workloads —
a reduced Table 3 and a fault-injection campaign — not just toy trials.
"""

import json

from repro import exp
from repro.eval import campaign, table3


def _dump(result):
    return json.dumps(result.results, sort_keys=True)


def echo_trial(seed, params):
    """A trivial trial: echoes its inputs (merge-ordering probe)."""
    return {"seed": seed, "cell": params["cell"]}


def test_parallel_table3_is_byte_identical_to_serial():
    spec = table3.spec(runs=3, base_seed=1, ftms=("pbr", "lfr"))
    serial = exp.run(spec, jobs=1)
    parallel = exp.run(spec, jobs=4)
    assert _dump(serial) == _dump(parallel)
    assert serial.executed == parallel.executed == spec.unit_count == 12


def test_parallel_campaign_is_byte_identical_to_serial():
    spec = campaign.spec(missions=5, base_seed=42, requests=12)
    serial = exp.run(spec, jobs=1)
    parallel = exp.run(spec, jobs=4)
    assert _dump(serial) == _dump(parallel)
    # and the aggregated artifact is identical too, not just the raw cells
    assert campaign.from_results(serial.results) == campaign.from_results(
        parallel.results
    )


def test_merge_order_follows_spec_not_completion():
    trials = tuple(
        exp.Trial(key=f"c{i}", params={"cell": i}, seeds=(3 * i, 3 * i + 1))
        for i in range(10)
    )
    spec = exp.ExperimentSpec(name="echo", trial=echo_trial, trials=trials)
    result = exp.run(spec, jobs=4)
    assert list(result.results) == [f"c{i}" for i in range(10)]
    for i in range(10):
        assert result.cell(f"c{i}") == [
            {"seed": 3 * i, "cell": i},
            {"seed": 3 * i + 1, "cell": i},
        ]


def test_runner_counts_executed_trials():
    exp.reset_executed_counter()
    from repro.exp import runner

    spec = exp.ExperimentSpec(
        name="echo", trial=echo_trial,
        trials=(exp.Trial("a", {"cell": 0}, (1, 2, 3)),),
    )
    result = exp.run(spec, jobs=1)
    assert result.executed == 3
    assert not result.cached
    assert result.cells_executed == 1 and result.cells_cached == 0
    # the legacy module-level mirror still tracks executions
    assert runner.TRIALS_EXECUTED == 3


def test_results_are_json_normalised():
    # a fresh run returns exactly what a store round-trip would return
    spec = exp.ExperimentSpec(
        name="echo", trial=echo_trial,
        trials=(exp.Trial("a", {"cell": 7}, (5,)),),
    )
    result = exp.run(spec, jobs=1)
    assert result.results == json.loads(json.dumps(result.results))


def test_events_by_source_attribution_flows_to_result():
    # a campaign mission is heartbeat-dominated: the per-subsystem
    # attribution harvested from released worlds must reach both the
    # ExperimentResult summary and an aggregating ExecutionStats
    spec = campaign.spec(missions=2, base_seed=42, requests=8)
    stats = exp.ExecutionStats()
    result = exp.run(spec, jobs=1, stats=stats)
    sources = result.events_by_source
    assert set(sources) >= {"heartbeat", "timer", "request", "fault"}
    assert sources["heartbeat"] > sources["request"] > 0
    assert sources["timer"] > 0
    assert stats.events_by_source == sources
    assert result.summary()["events_by_source"] == sources


def test_events_by_source_resets_between_runs():
    # the process-wide accumulator is taken per dispatch: two identical
    # runs report identical (not cumulative) attribution
    spec = campaign.spec(missions=1, base_seed=7, requests=8)
    first = exp.run(spec, jobs=1).events_by_source
    second = exp.run(spec, jobs=1).events_by_source
    assert first == second
    assert first["heartbeat"] > 0
