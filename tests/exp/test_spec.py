"""Unit tests for experiment specs: seed derivation, hashing, validation."""

import hashlib
import zlib

import pytest

from repro import exp
from repro.eval import table3
from repro.exp.errors import SpecError


def _echo(seed, params):
    """Module-level trial used by spec tests."""
    return {"seed": seed, **dict(params)}


def _sum_reduce(values):
    """Module-level reduce used by spec tests."""
    return {"n": len(values)}


def _spec(**overrides):
    base = dict(
        name="t",
        trial=_echo,
        trials=(exp.Trial("a", {"x": 1}, (1, 2)), exp.Trial("b", {"x": 2}, (3,))),
    )
    base.update(overrides)
    return exp.ExperimentSpec(**base)


# -- seed derivation -----------------------------------------------------------


def test_derive_seed_matches_documented_formula():
    mix = int.from_bytes(
        hashlib.blake2b(b"deploy:pbr\x1f2", digest_size=8).digest(), "big"
    )
    assert exp.derive_seed(1000, "deploy:pbr", 2) == 1000 + mix


def test_derive_seeds_stable_and_distinct():
    seeds = exp.derive_seeds(7, "cell", 5)
    assert seeds == exp.derive_seeds(7, "cell", 5)
    assert len(set(seeds)) == 5
    assert seeds != exp.derive_seeds(7, "other-cell", 5)
    assert seeds != exp.derive_seeds(8, "cell", 5)


def test_derive_seeds_prefix_property():
    # raising the run count extends the seed tuple without moving old seeds
    assert exp.derive_seeds(7, "cell", 3) == exp.derive_seeds(7, "cell", 5)[:3]


def _old_derive_seed(base_seed, key, run):
    """The pre-64-bit derivation (collision space of 100 000)."""
    return base_seed + (zlib.crc32(key.encode("utf-8")) + 37 * run) % 100_000


def test_derive_seed_collision_regression():
    # the old % 100_000 folding made distinct (key, run) pairs share seeds
    # across cells; find such a pair and assert the 64-bit mix splits it
    keys = [f"deploy:{k}" for k in "abcdefghij"] + [f"c{i}->c{j}"
                                                   for i in range(8)
                                                   for j in range(8)]
    seen = {}
    collision = None
    for key in keys:
        for run in range(50):
            old = _old_derive_seed(0, key, run)
            if old in seen and seen[old][0] != key:
                collision = (seen[old], (key, run))
                break
            seen[old] = (key, run)
        if collision:
            break
    assert collision is not None, "search space should exhibit an old collision"
    (key_a, run_a), (key_b, run_b) = collision
    assert _old_derive_seed(0, key_a, run_a) == _old_derive_seed(0, key_b, run_b)
    assert exp.derive_seed(0, key_a, run_a) != exp.derive_seed(0, key_b, run_b)


def test_derive_seed_dense_grid_is_collision_free():
    # a Table 3-sized grid times a campaign's worth of runs: all distinct
    keys = [f"k{i}->k{j}" for i in range(10) for j in range(10)]
    seeds = {exp.derive_seed(0, key, run) for key in keys for run in range(100)}
    assert len(seeds) == len(keys) * 100


def test_table3_spec_uses_the_derived_cell_seeds():
    spec = table3.spec(runs=3, base_seed=1000)
    cell = spec.cell("pbr->lfr")
    assert cell.seeds == exp.derive_seeds(1000, "pbr->lfr", 3)


# -- hashing -------------------------------------------------------------------


def test_spec_hash_is_stable():
    assert exp.spec_hash(_spec()) == exp.spec_hash(_spec())


@pytest.mark.parametrize(
    "mutation",
    [
        {"name": "other"},
        {"version": "3"},
        {"trials": (exp.Trial("a", {"x": 1}, (1, 2)), exp.Trial("b", {"x": 2}, (4,)))},
        {"trials": (exp.Trial("a", {"x": 9}, (1, 2)), exp.Trial("b", {"x": 2}, (3,)))},
        {"trials": (exp.Trial("a", {"x": 1}, (1, 2, 3)), exp.Trial("b", {"x": 2}, (3,)))},
        {"reduce": _sum_reduce},
    ],
    ids=["name", "version", "seed", "params", "runs", "reduce"],
)
def test_spec_hash_sees_every_identity_field(mutation):
    assert exp.spec_hash(_spec(**mutation)) != exp.spec_hash(_spec())


def test_default_version_is_bumped_for_the_64bit_seeds():
    # entries stored under the "1" (crc32 % 100_000) scheme must miss
    assert _spec().version == "2"


def test_fingerprint_is_json_safe_and_names_the_trial():
    import json

    fp = exp.fingerprint(_spec())
    json.dumps(fp)
    assert fp["trial"].endswith(":_echo")
    assert fp["trials"][0]["seeds"] == [1, 2]
    assert fp["reduce"] is None


# -- cell hashing --------------------------------------------------------------


def test_cell_hash_is_stable_and_distinct_per_cell():
    spec = _spec()
    hashes = [exp.cell_hash(spec, trial) for trial in spec.trials]
    assert hashes == [exp.cell_hash(_spec(), trial) for trial in _spec().trials]
    assert len(set(hashes)) == len(hashes)


def test_editing_one_cell_changes_only_that_cells_hash():
    spec = _spec()
    edited = _spec(
        trials=(exp.Trial("a", {"x": 1}, (1, 2)), exp.Trial("b", {"x": 99}, (3,)))
    )
    assert exp.cell_hash(spec, spec.cell("a")) == exp.cell_hash(
        edited, edited.cell("a")
    )
    assert exp.cell_hash(spec, spec.cell("b")) != exp.cell_hash(
        edited, edited.cell("b")
    )


def test_spec_level_changes_invalidate_every_cell():
    spec = _spec()
    for mutated in (_spec(version="3"), _spec(reduce=_sum_reduce)):
        for trial in spec.trials:
            assert exp.cell_hash(spec, trial) != exp.cell_hash(
                mutated, mutated.cell(trial.key)
            )


def test_cell_fingerprint_is_json_safe():
    import json

    spec = _spec()
    fp = exp.cell_fingerprint(spec, spec.cell("a"))
    json.dumps(fp)
    assert fp["cell"]["key"] == "a"
    assert fp["version"] == spec.version


def test_cell_slug_is_filesystem_safe():
    assert exp.cell_slug("pbr->lfr") == "pbr-_lfr"
    assert exp.cell_slug("deploy:pbr+tr") == "deploy_pbr+tr"
    assert exp.cell_slug("///") == "cell"
    assert len(exp.cell_slug("x" * 200)) == 48


# -- validation ----------------------------------------------------------------


def test_spec_rejects_lambda_trials():
    with pytest.raises(SpecError):
        exp.ExperimentSpec(
            name="bad", trial=lambda s, p: {}, trials=(exp.Trial("a"),)
        )


def test_spec_rejects_lambda_reduce():
    with pytest.raises(SpecError):
        _spec(reduce=lambda values: len(values))


def test_spec_rejects_duplicate_cell_keys():
    with pytest.raises(SpecError):
        _spec(trials=(exp.Trial("a"), exp.Trial("a")))


def test_spec_cell_lookup():
    spec = _spec()
    assert spec.cell("b").params == {"x": 2}
    assert spec.unit_count == 3
    with pytest.raises(SpecError):
        spec.cell("missing")
