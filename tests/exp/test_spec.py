"""Unit tests for experiment specs: seed derivation, hashing, validation."""

import zlib

import pytest

from repro import exp
from repro.eval import table3
from repro.exp.errors import SpecError


def _echo(seed, params):
    """Module-level trial used by spec tests."""
    return {"seed": seed, **dict(params)}


def _spec(**overrides):
    base = dict(
        name="t",
        trial=_echo,
        trials=(exp.Trial("a", {"x": 1}, (1, 2)), exp.Trial("b", {"x": 2}, (3,))),
    )
    base.update(overrides)
    return exp.ExperimentSpec(**base)


# -- seed derivation -----------------------------------------------------------


def test_derive_seed_matches_documented_formula():
    assert exp.derive_seed(1000, "deploy:pbr", 2) == 1000 + (
        zlib.crc32(b"deploy:pbr") + 37 * 2
    ) % 100_000


def test_derive_seeds_stable_and_distinct():
    seeds = exp.derive_seeds(7, "cell", 5)
    assert seeds == exp.derive_seeds(7, "cell", 5)
    assert len(set(seeds)) == 5
    assert seeds != exp.derive_seeds(7, "other-cell", 5)
    assert seeds != exp.derive_seeds(8, "cell", 5)


def test_derive_seeds_prefix_property():
    # raising the run count extends the seed tuple without moving old seeds
    assert exp.derive_seeds(7, "cell", 3) == exp.derive_seeds(7, "cell", 5)[:3]


def test_table3_spec_preserves_legacy_cell_seeds():
    # the port kept the historical per-cell derivation, so stored results
    # and published tables stay comparable across versions
    spec = table3.spec(runs=3, base_seed=1000)
    cell = spec.cell("pbr->lfr")
    legacy = tuple(
        1000 + (zlib.crc32(b"pbr->lfr") + 37 * run) % 100_000 for run in range(3)
    )
    assert cell.seeds == legacy


# -- hashing -------------------------------------------------------------------


def test_spec_hash_is_stable():
    assert exp.spec_hash(_spec()) == exp.spec_hash(_spec())


@pytest.mark.parametrize(
    "mutation",
    [
        {"name": "other"},
        {"version": "2"},
        {"trials": (exp.Trial("a", {"x": 1}, (1, 2)), exp.Trial("b", {"x": 2}, (4,)))},
        {"trials": (exp.Trial("a", {"x": 9}, (1, 2)), exp.Trial("b", {"x": 2}, (3,)))},
        {"trials": (exp.Trial("a", {"x": 1}, (1, 2, 3)), exp.Trial("b", {"x": 2}, (3,)))},
    ],
    ids=["name", "version", "seed", "params", "runs"],
)
def test_spec_hash_sees_every_identity_field(mutation):
    assert exp.spec_hash(_spec(**mutation)) != exp.spec_hash(_spec())


def test_fingerprint_is_json_safe_and_names_the_trial():
    import json

    fp = exp.fingerprint(_spec())
    json.dumps(fp)
    assert fp["trial"].endswith(":_echo")
    assert fp["trials"][0]["seeds"] == [1, 2]


# -- validation ----------------------------------------------------------------


def test_spec_rejects_lambda_trials():
    with pytest.raises(SpecError):
        exp.ExperimentSpec(
            name="bad", trial=lambda s, p: {}, trials=(exp.Trial("a"),)
        )


def test_spec_rejects_duplicate_cell_keys():
    with pytest.raises(SpecError):
        _spec(trials=(exp.Trial("a"), exp.Trial("a")))


def test_spec_cell_lookup():
    spec = _spec()
    assert spec.cell("b").params == {"x": 2}
    assert spec.unit_count == 3
    with pytest.raises(SpecError):
        spec.cell("missing")
