"""Tests for the experiment runtime layer (:mod:`repro.exp`)."""
