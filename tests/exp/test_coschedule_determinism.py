"""The determinism matrix: coschedule × jobs must not move a byte.

``run(spec, coschedule=K)`` is pure execution strategy — like ``jobs``
it may change wall-clock and nothing else.  These tests pin the
acceptance criteria of the co-scheduling PR: sequential, co-scheduled,
parallel and parallel+co-scheduled executions of the same spec produce
byte-identical result payloads *and* byte-identical result-store files.
"""

import json

import pytest

from repro import exp
from repro.eval import campaign, transition_matrix
from repro.exp import SpecError


def _payload(result):
    """The canonical byte-comparison form used across the runner tests."""
    return json.dumps(result.results, sort_keys=True)


def _drop_elapsed(value):
    """Strip wall-clock ``elapsed_s`` keys at any nesting depth."""
    if isinstance(value, dict):
        return {k: _drop_elapsed(v) for k, v in value.items()
                if k != "elapsed_s"}
    if isinstance(value, list):
        return [_drop_elapsed(v) for v in value]
    return value


def test_campaign_execution_matrix_is_byte_identical():
    spec = campaign.sharded_spec(
        missions=12, base_seed=5100, requests=6, cell_size=4
    )
    sequential = exp.run(spec, jobs=1)
    # coschedule_min_units=0 disables the small-run clamp: these tests
    # must exercise the co-scheduled lane itself, not its serial fallback
    coscheduled = exp.run(spec, jobs=1, coschedule=4, coschedule_min_units=0)
    parallel = exp.run(spec, jobs=2)
    both = exp.run(spec, jobs=2, coschedule=3, coschedule_min_units=0)
    assert (
        _payload(sequential)
        == _payload(coscheduled)
        == _payload(parallel)
        == _payload(both)
    )


def test_transition_matrix_coscheduled_is_byte_identical():
    spec = transition_matrix.spec(runs=1, base_seed=7100, smoke=True)
    sequential = exp.run(spec, jobs=1)
    coscheduled = exp.run(spec, jobs=1, coschedule=3, coschedule_min_units=0)
    assert coscheduled.coschedule_effective == 3
    assert _payload(sequential) == _payload(coscheduled)


def test_store_files_are_byte_identical_sequential_vs_coscheduled(tmp_path):
    # enabling co-scheduling must not invalidate or even perturb stored
    # results: every file the store writes has to match byte for byte
    spec = campaign.sharded_spec(
        missions=8, base_seed=5200, requests=6, cell_size=4
    )
    exp.run(spec, jobs=1, store=exp.ResultStore(tmp_path / "seq"))
    exp.run(spec, jobs=1, coschedule=4, coschedule_min_units=0,
            store=exp.ResultStore(tmp_path / "cosched"))

    seq_files = sorted(p for p in (tmp_path / "seq").rglob("*") if p.is_file())
    co_files = sorted(
        p for p in (tmp_path / "cosched").rglob("*") if p.is_file()
    )
    assert [p.name for p in seq_files] == [p.name for p in co_files]
    assert seq_files  # the store actually wrote something
    for seq_file, co_file in zip(seq_files, co_files):
        seq_bytes, co_bytes = seq_file.read_bytes(), co_file.read_bytes()
        if seq_file.name == "manifest.json":
            # elapsed_s is wall-clock: it differs between any two runs,
            # co-scheduled or not — every other byte must match
            seq_bytes, co_bytes = (
                json.dumps(_drop_elapsed(json.loads(raw)),
                           sort_keys=True).encode()
                for raw in (seq_bytes, co_bytes)
            )
        assert seq_bytes == co_bytes, seq_file.name


def test_coscheduled_run_hits_warm_store(tmp_path):
    spec = campaign.sharded_spec(
        missions=8, base_seed=5300, requests=6, cell_size=4
    )
    store = exp.ResultStore(tmp_path)
    cold = exp.run(spec, jobs=1, store=store)
    warm = exp.run(spec, jobs=1, coschedule=4, store=store)
    assert cold.executed > 0
    assert warm.executed == 0
    assert _payload(cold) == _payload(warm)


def _plain_trial(seed, params):
    return {"seed": seed}


def test_coschedule_without_cotrial_is_a_spec_error():
    spec = exp.ExperimentSpec(
        name="plain", trial=_plain_trial,
        trials=(exp.Trial(key="only", seeds=(1, 2)),),
    )
    with pytest.raises(SpecError, match="cotrial"):
        exp.run(spec, jobs=1, coschedule=2)


def test_coschedule_width_one_works_without_cotrial():
    spec = exp.ExperimentSpec(
        name="plain", trial=_plain_trial,
        trials=(exp.Trial(key="only", seeds=(1, 2)),),
    )
    result = exp.run(spec, jobs=1, coschedule=1)
    assert result.results["only"] == [{"seed": 1}, {"seed": 2}]


def test_result_records_coschedule_width():
    spec = transition_matrix.spec(runs=1, base_seed=7200, smoke=True)
    result = exp.run(spec, jobs=1, coschedule=3)
    assert result.coschedule == 3
    assert result.summary()["coschedule"] == 3
    default = exp.run(spec, jobs=1)
    assert default.coschedule == 1


# -- the small-run co-schedule clamp ----------------------------------------


def test_small_run_clamps_coschedule_to_serial_lane():
    # 12 missions is far below COSCHEDULE_MIN_UNITS: the requested width
    # is recorded, but the run executes on the serial lane (0.84x at 48
    # missions was the BENCH_distributed regression this clamp fixes)
    spec = campaign.sharded_spec(
        missions=12, base_seed=5400, requests=6, cell_size=4
    )
    assert spec.unit_count < exp.COSCHEDULE_MIN_UNITS
    clamped = exp.run(spec, jobs=1, coschedule=8)
    assert clamped.coschedule == 8
    assert clamped.coschedule_effective == 1
    assert clamped.summary()["coschedule_effective"] == 1


def test_clamp_override_per_call_and_via_environment(monkeypatch):
    spec = campaign.sharded_spec(
        missions=12, base_seed=5400, requests=6, cell_size=4
    )
    forced = exp.run(spec, jobs=1, coschedule=4, coschedule_min_units=0)
    assert forced.coschedule_effective == 4
    monkeypatch.setenv("REPRO_COSCHEDULE_MIN_UNITS", "4")
    env_forced = exp.run(spec, jobs=1, coschedule=4)
    assert env_forced.coschedule_effective == 4
    monkeypatch.setenv("REPRO_COSCHEDULE_MIN_UNITS", "100000")
    env_clamped = exp.run(spec, jobs=1, coschedule=4)
    assert env_clamped.coschedule_effective == 1
    # explicit override beats the environment
    both = exp.run(spec, jobs=1, coschedule=4, coschedule_min_units=0)
    assert both.coschedule_effective == 4


def test_clamped_run_is_byte_identical_to_forced_lane():
    spec = campaign.sharded_spec(
        missions=12, base_seed=5500, requests=6, cell_size=4
    )
    clamped = exp.run(spec, jobs=1, coschedule=8)
    forced = exp.run(spec, jobs=1, coschedule=8, coschedule_min_units=0)
    assert clamped.coschedule_effective == 1
    assert forced.coschedule_effective == 8
    assert _payload(clamped) == _payload(forced)
