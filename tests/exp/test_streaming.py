"""Streaming pipeline tests: partial invalidation, resume, reduce, batching.

The cell-granular contract: editing one cell of a many-cell spec
re-executes exactly that cell's units; a killed run resumes from the
cells it already persisted; a ``reduce`` hook streams cells down to
summaries; and none of it perturbs the byte-identity of serial,
parallel, batched, partially-cached and resumed runs.
"""

import json
import os

import pytest

from repro import exp
from repro.exp.errors import ResultTypeError


def echo_trial(seed, params):
    """A trivial trial: echoes its inputs."""
    return {"seed": seed, "cell": params["cell"]}


def fragile_trial(seed, params):
    """Echo trial that dies on late cells while the sentinel file exists."""
    if params["index"] >= 3 and os.path.exists(params["sentinel"]):
        raise RuntimeError("simulated kill")
    return {"seed": seed, "index": params["index"]}


def count_reduce(values):
    """Collapse a cell to counts (the streaming-campaign shape)."""
    return {
        "n": len(values),
        "seed_sum": sum(v["seed"] for v in values),
    }


def other_reduce(values):
    """A second reduction, for invalidation tests."""
    return {"n": len(values)}


def _table3_shaped_spec(edit_cell=None):
    """A 36-cell echo spec shaped like Table 3 (6 deploys + 30 transitions)."""
    names = [f"f{i}" for i in range(6)]
    keys = [f"deploy:{n}" for n in names] + [
        f"{a}->{b}" for a in names for b in names if a != b
    ]
    trials = []
    for key in keys:
        params = {"cell": key}
        if key == edit_cell:
            params["edited"] = True
        trials.append(exp.Trial(key=key, params=params,
                                seeds=exp.derive_seeds(1000, key, 3)))
    return exp.ExperimentSpec(name="t3-shape", trial=echo_trial,
                              trials=tuple(trials))


# -- partial invalidation ------------------------------------------------------


def test_one_cell_edit_reexecutes_exactly_that_cells_units(tmp_path):
    store = exp.ResultStore(tmp_path)
    baseline = _table3_shaped_spec()
    assert len(baseline.trials) == 36
    first = exp.run(baseline, jobs=1, store=store)
    assert first.executed == 36 * 3

    edited = _table3_shaped_spec(edit_cell="f1->f2")
    second = exp.run(edited, jobs=1, store=store)
    assert second.executed == 3  # executed == runs of the edited cell
    assert second.cells_executed == 1
    assert second.cells_cached == 35
    # untouched cells byte-identical to the first run
    for key in (t.key for t in baseline.trials):
        if key != "f1->f2":
            assert second.results[key] == first.results[key]


def test_partial_cache_hit_is_byte_identical_to_cold_runs(tmp_path):
    store = exp.ResultStore(tmp_path)
    edited = _table3_shaped_spec(edit_cell="f0->f5")
    # warm 35 of 36 cells via the baseline spec
    exp.run(_table3_shaped_spec(), jobs=1, store=store)

    cold_serial = exp.run(edited, jobs=1)
    cold_parallel = exp.run(edited, jobs=4)
    partial = exp.run(edited, jobs=4, store=store)
    assert partial.executed == 3
    dumps = [json.dumps(r.results, sort_keys=True)
             for r in (cold_serial, cold_parallel, partial)]
    assert dumps[0] == dumps[1] == dumps[2]


# -- kill and resume -----------------------------------------------------------


def test_killed_run_resumes_from_persisted_cells(tmp_path):
    store = exp.ResultStore(tmp_path)
    sentinel = tmp_path / "kill-switch"
    sentinel.write_text("armed", encoding="utf-8")
    trials = tuple(
        exp.Trial(key=f"c{i}", params={"index": i, "sentinel": str(sentinel)},
                  seeds=(10 * i, 10 * i + 1))
        for i in range(6)
    )
    spec = exp.ExperimentSpec(name="resume", trial=fragile_trial,
                              trials=trials)

    with pytest.raises(RuntimeError):
        exp.run(spec, jobs=1, store=store)
    # serial execution proceeds in spec order: cells 0-2 were persisted
    persisted = exp.ResultStore(tmp_path).load_cells(spec)
    assert set(persisted) == {"c0", "c1", "c2"}

    sentinel.unlink()
    resumed = exp.run(spec, jobs=1, store=store)
    assert resumed.executed == 6  # three remaining cells x two runs
    assert resumed.cells_cached == 3

    clean = exp.run(spec, jobs=1)
    assert json.dumps(resumed.results, sort_keys=True) == json.dumps(
        clean.results, sort_keys=True
    )
    # the resumed run finalised the manifest, so the next run is a full hit
    assert exp.run(spec, jobs=4, store=store).cached


# -- the reduce hook -----------------------------------------------------------


def _reduced_spec(reduce_fn=count_reduce, cells=4, runs=5):
    trials = tuple(
        exp.Trial(key=f"c{i}", params={"cell": f"c{i}"},
                  seeds=tuple(range(100 * i, 100 * i + runs)))
        for i in range(cells)
    )
    return exp.ExperimentSpec(name="reduced", trial=echo_trial,
                              trials=trials, reduce=reduce_fn)


def test_reduce_collapses_cells_to_summaries():
    result = exp.run(_reduced_spec(), jobs=1)
    assert result.results["c0"] == {"n": 5, "seed_sum": sum(range(5))}
    assert result.results["c2"] == {"n": 5,
                                    "seed_sum": sum(range(200, 205))}


def test_reduce_is_deterministic_across_jobs_batches_and_cache(tmp_path):
    store = exp.ResultStore(tmp_path)
    spec = _reduced_spec()
    serial = exp.run(spec, jobs=1, store=store)
    parallel = exp.run(_reduced_spec(), jobs=4, batch=2)
    cached = exp.run(spec, jobs=4, store=store)
    assert cached.cached and cached.executed == 0
    dumps = [json.dumps(r.results, sort_keys=True)
             for r in (serial, parallel, cached)]
    assert dumps[0] == dumps[1] == dumps[2]
    # the store holds the reduced summary, not the raw per-run values
    payload = json.loads(
        store.cell_path(spec, spec.cell("c0")).read_text(encoding="utf-8")
    )
    assert payload["values"] == {"n": 5, "seed_sum": 10}


def test_changing_the_reduce_fn_invalidates_stored_cells(tmp_path):
    store = exp.ResultStore(tmp_path)
    exp.run(_reduced_spec(count_reduce), jobs=1, store=store)
    swapped = exp.run(_reduced_spec(other_reduce), jobs=1, store=store)
    assert not swapped.cached and swapped.executed == 20
    assert swapped.results["c0"] == {"n": 5}


def test_reduce_result_must_be_json_safe():
    with pytest.raises(ResultTypeError):
        exp.run(
            exp.ExperimentSpec(
                name="bad-reduce", trial=echo_trial,
                trials=(exp.Trial("a", {"cell": "a"}, (1,)),),
                reduce=bad_reduce,
            ),
            jobs=1,
        )


def bad_reduce(values):
    """Returns something JSON cannot carry."""
    return {"values": object()}


# -- batching ------------------------------------------------------------------


def test_batched_dispatch_is_byte_identical_to_serial():
    trials = tuple(
        exp.Trial(key=f"c{i}", params={"cell": f"c{i}"},
                  seeds=tuple(range(7 * i, 7 * i + 7)))
        for i in range(9)
    )
    spec = exp.ExperimentSpec(name="batchy", trial=echo_trial, trials=trials)
    serial = exp.run(spec, jobs=1)
    for batch in (1, 4, 63, None):
        parallel = exp.run(spec, jobs=4, batch=batch)
        assert json.dumps(parallel.results, sort_keys=True) == json.dumps(
            serial.results, sort_keys=True
        )


def test_default_batch_is_bounded():
    # amortises dispatch without letting per-task memory scale with units
    assert exp.default_batch(10, 4) == 1
    assert exp.default_batch(2000, 4) == 32
    assert exp.default_batch(1_000_000, 8) == 32
    assert exp.default_batch(0, 1) == 1


# -- execution stats -----------------------------------------------------------


def test_stats_thread_through_runs(tmp_path):
    store = exp.ResultStore(tmp_path)
    stats = exp.ExecutionStats()
    spec = _table3_shaped_spec()
    exp.run(spec, jobs=1, store=store, stats=stats)
    assert stats.executed == 108
    assert stats.cells_executed == 36
    assert stats.cells_cached == 0
    exp.run(spec, jobs=1, store=store, stats=stats)
    assert stats.executed == 108  # warm cache adds nothing
    assert stats.cells_cached == 36


def test_legacy_module_counter_still_mirrors_executions():
    exp.reset_executed_counter()
    spec = exp.ExperimentSpec(
        name="legacy-count", trial=echo_trial,
        trials=(exp.Trial("a", {"cell": "a"}, (1, 2, 3)),),
    )
    exp.run(spec, jobs=1)
    assert exp.trials_executed() == 3
