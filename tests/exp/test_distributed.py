"""Remote backend: wire protocol, failover, and byte-identity.

The worker-crash test is the PR's robustness bar: a worker that dies
after returning some batches must have its orphaned batches rebatched
deterministically onto the survivors, and the final store bytes must
equal a serial run's — nothing lost, nothing doubled.
"""

import hashlib
import json
import os
import re
import shutil
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import pytest

from repro import exp
from repro.exp import distributed


def _dump(result):
    return json.dumps(result.results, sort_keys=True)


def _store_bytes(root):
    digests = {}
    for path in sorted(root.rglob("*.json")):
        if path.name == "manifest.json":
            continue
        digests[str(path.relative_to(root))] = hashlib.sha256(
            path.read_bytes()
        ).hexdigest()
    return digests


def echo_trial(seed, params):
    return {"seed": seed, "cell": params["cell"]}


def _echo_spec(cells=6, runs=2, name="echo-remote", trial=echo_trial):
    trials = tuple(
        exp.Trial(key=f"c{i}", params={"cell": i},
                  seeds=tuple(range(runs * i, runs * i + runs)))
        for i in range(cells)
    )
    return exp.ExperimentSpec(name=name, trial=trial, trials=trials)


# -- framing ----------------------------------------------------------------


def _socket_pair():
    server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    server.bind(("127.0.0.1", 0))
    server.listen(1)
    client = socket.create_connection(server.getsockname())
    peer, _ = server.accept()
    server.close()
    return client, peer


def test_frame_roundtrip_preserves_message():
    client, peer = _socket_pair()
    try:
        message = {"type": "batch", "id": 3,
                   "units": [[0, 123, {"cell": 0}]]}
        distributed.send_msg(client, message)
        assert distributed.recv_msg(peer) == message
    finally:
        client.close()
        peer.close()


def test_corrupted_payload_is_rejected_by_checksum():
    client, peer = _socket_pair()
    try:
        payload = json.dumps({"type": "ready"}).encode()
        digest = distributed._checksum(payload)
        corrupted = bytearray(payload)
        corrupted[0] ^= 0xFF
        client.sendall(distributed.MAGIC + len(payload).to_bytes(4, "big")
                       + digest + bytes(corrupted))
        with pytest.raises(distributed.ProtocolError, match="checksum"):
            distributed.recv_msg(peer)
    finally:
        client.close()
        peer.close()


def test_bad_magic_is_rejected():
    client, peer = _socket_pair()
    try:
        client.sendall(b"NOPE" + bytes(12))
        with pytest.raises(distributed.ProtocolError, match="magic"):
            distributed.recv_msg(peer)
    finally:
        client.close()
        peer.close()


def test_half_closed_peer_raises_connection_error():
    client, peer = _socket_pair()
    try:
        client.sendall(distributed.MAGIC)  # partial header, then gone
        client.close()
        with pytest.raises(ConnectionError):
            distributed.recv_msg(peer)
    finally:
        peer.close()


def test_parse_address():
    assert distributed.parse_address("10.0.0.2:9001") == ("10.0.0.2", 9001)
    with pytest.raises(exp.DistributedError):
        distributed.parse_address("no-port")
    with pytest.raises(exp.DistributedError):
        distributed.parse_address("host:notaport")
    with pytest.raises(exp.DistributedError):
        distributed.parse_address("host:99999")


# -- batch scheduler --------------------------------------------------------


def test_scheduler_rebatches_orphans_in_dispatch_order():
    scheduler = distributed._BatchScheduler([["b0"], ["b1"], ["b2"], ["b3"]])
    assert scheduler.acquire("w1") == (0, ["b0"])
    assert scheduler.acquire("w2") == (1, ["b1"])
    assert scheduler.acquire("w1") is not None  # bid 2
    scheduler.complete(2)
    # w1 dies holding bid 0; its orphan must come back before bid 3
    assert scheduler.abandon("w1") == [0]
    assert scheduler.acquire("w2") == (0, ["b0"])
    scheduler.complete(0)
    scheduler.complete(1)
    assert scheduler.acquire("w2") == (3, ["b3"])
    scheduler.complete(3)
    assert scheduler.acquire("w2") is None
    assert scheduler.unfinished() == 0


def test_scheduler_acquire_nowait_never_blocks():
    scheduler = distributed._BatchScheduler([["b0"], ["b1"]])
    assert scheduler.acquire_nowait("w1") == (0, ["b0"])
    assert scheduler.acquire_nowait("w1") == (1, ["b1"])
    # nothing pending (both outstanding on w1): returns None immediately
    # instead of blocking for an abandon that may never come
    assert scheduler.acquire_nowait("w2") is None
    scheduler.complete(0)
    scheduler.complete(1)
    assert scheduler.acquire_nowait("w1") is None
    assert scheduler.unfinished() == 0


def test_digest_frame_uses_rxd1_magic():
    client, peer = _socket_pair()
    try:
        message = {"type": "digest", "id": 0,
                   "cells": [["c0", "ab" * 6, "cd" * 16, 2]]}
        distributed.send_msg(client, message,
                             magic=distributed.DIGEST_MAGIC)
        magic, received = distributed.recv_frame(peer)
        assert magic == distributed.DIGEST_MAGIC
        assert received == message
    finally:
        client.close()
        peer.close()


def test_scheduler_fail_wakes_blocked_acquirers():
    scheduler = distributed._BatchScheduler([["b0"]])
    assert scheduler.acquire("w1") == (0, ["b0"])
    results = []

    def blocked():
        results.append(scheduler.acquire("w2"))

    thread = threading.Thread(target=blocked)
    thread.start()
    time.sleep(0.05)
    scheduler.fail(exp.DistributedError("boom"))
    thread.join(timeout=5)
    assert results == [None]
    assert isinstance(scheduler.failure, exp.DistributedError)


# -- live workers (subprocesses, as in production) --------------------------


def _start_worker(*extra):
    # every worker gets its own throwaway shadow store so tests never
    # litter the repository root (or share state through the default)
    shadow_dir = tempfile.mkdtemp(prefix="repro-shadow-")
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker",
         "--listen", "127.0.0.1:0", "--shadow", shadow_dir, *extra],
        env=env, stdout=subprocess.PIPE, text=True,
    )
    process.shadow_dir = shadow_dir
    line = process.stdout.readline()
    match = re.search(r"listening on (\S+)", line)
    assert match, f"worker did not announce its address: {line!r}"
    return process, match.group(1)


def _stop_worker(process):
    if process.poll() is None:
        process.terminate()
    process.wait(timeout=10)
    shutil.rmtree(process.shadow_dir, ignore_errors=True)


@pytest.fixture
def two_workers():
    workers = [_start_worker() for _ in range(2)]
    yield [address for _proc, address in workers]
    for process, _address in workers:
        _stop_worker(process)


def test_remote_campaign_matches_serial_including_store(tmp_path,
                                                        two_workers):
    from repro.eval import campaign

    spec = campaign.sharded_spec(missions=8, base_seed=5000, requests=8,
                                 cell_size=4)
    serial_store = exp.ResultStore(tmp_path / "serial")
    remote_store = exp.ResultStore(tmp_path / "remote")
    serial = exp.run(spec, jobs=1, backend="serial", store=serial_store)
    remote = exp.run(spec, batch=1, workers=two_workers, store=remote_store,
                     coschedule=4, coschedule_min_units=0)
    assert _dump(serial) == _dump(remote)
    assert remote.backend == "remote"
    serial_bytes = _store_bytes(tmp_path / "serial")
    assert serial_bytes == _store_bytes(tmp_path / "remote")
    assert serial_bytes
    # digest-only return path: every cell acked by digest, and on the
    # same host the shadow read spares even the reconciliation fetch
    assert remote.cells_acked_digest == len(spec.trials)
    assert remote.cells_shipped_full == 0
    assert remote.wire_bytes_in > 0 and remote.wire_bytes_out > 0


def test_units_wire_mode_is_byte_identical_too(tmp_path, two_workers):
    from repro.eval import campaign

    spec = campaign.sharded_spec(missions=8, base_seed=5010, requests=8,
                                 cell_size=4)
    serial_store = exp.ResultStore(tmp_path / "serial")
    remote_store = exp.ResultStore(tmp_path / "remote")
    serial = exp.run(spec, jobs=1, backend="serial", store=serial_store)
    backend = distributed.RemoteBackend(two_workers, mode="units")
    remote = exp.run(spec, batch=1, backend=backend, store=remote_store)
    assert _dump(serial) == _dump(remote)
    assert _store_bytes(tmp_path / "serial") == _store_bytes(
        tmp_path / "remote")
    # full values crossed the wire: no digest acks in units mode
    assert remote.cells_shipped_full == len(spec.trials)
    assert remote.cells_acked_digest == 0


def test_digest_mode_fetch_fallback_without_shadow_reads(tmp_path,
                                                         two_workers):
    """With shadow reads disabled every missing cell's body must be
    wire-fetched — and the store bytes still match serial exactly."""
    from repro.eval import campaign

    spec = campaign.sharded_spec(missions=8, base_seed=5020, requests=8,
                                 cell_size=4)
    serial_store = exp.ResultStore(tmp_path / "serial")
    remote_store = exp.ResultStore(tmp_path / "remote")
    serial = exp.run(spec, jobs=1, backend="serial", store=serial_store)
    backend = distributed.RemoteBackend(two_workers, use_shadow=False)
    remote = exp.run(spec, batch=1, backend=backend, store=remote_store)
    assert _dump(serial) == _dump(remote)
    assert _store_bytes(tmp_path / "serial") == _store_bytes(
        tmp_path / "remote")
    assert remote.cells_acked_digest == len(spec.trials)
    assert remote.cells_shipped_full == len(spec.trials)  # all fetched


def test_coordinator_store_hit_resolves_digest_without_fetch(tmp_path,
                                                             two_workers):
    """A cell the coordinator's store already holds never crosses the
    wire twice: ``fresh=True`` re-dispatches every cell, but the digest
    acks reconcile against the existing local bytes — even with shadow
    reads disabled there is nothing to fetch."""
    from repro.eval import campaign

    spec = campaign.sharded_spec(missions=8, base_seed=5030, requests=8,
                                 cell_size=4)
    store = exp.ResultStore(tmp_path / "store")
    exp.run(spec, jobs=1, backend="serial", store=store)
    before = _store_bytes(tmp_path / "store")
    backend = distributed.RemoteBackend(two_workers, use_shadow=False)
    remote = exp.run(spec, batch=1, backend=backend, store=store, fresh=True)
    assert _store_bytes(tmp_path / "store") == before
    assert remote.cells_acked_digest == len(spec.trials)
    assert remote.cells_shipped_full == 0  # every ack was a local hit


def slow_echo_trial(seed, params):
    # slow enough that one worker cannot drain the whole campaign before
    # the other's feed thread gets scheduled — the failover test needs
    # the mortal worker to actually receive (and serve) its one batch
    time.sleep(0.05)
    return {"seed": seed, "cell": params["cell"]}


def test_worker_crash_mid_campaign_rebatches_onto_survivor(tmp_path):
    """Kill one worker after it returned some batches: the orphaned units
    must land on the survivor and the store must match serial exactly."""
    mortal, mortal_address = _start_worker("--max-batches", "1")
    survivor, survivor_address = _start_worker()
    try:
        spec = _echo_spec(cells=8, runs=2, name="echo-failover",
                          trial=slow_echo_trial)
        serial_store = exp.ResultStore(tmp_path / "serial")
        remote_store = exp.ResultStore(tmp_path / "remote")
        serial = exp.run(spec, jobs=1, backend="serial", store=serial_store)
        backend = distributed.RemoteBackend(
            [mortal_address, survivor_address], batch_timeout=30.0
        )
        remote = exp.run(spec, batch=1, backend=backend, store=remote_store)
        assert _dump(serial) == _dump(remote)
        assert _store_bytes(tmp_path / "serial") == _store_bytes(
            tmp_path / "remote"
        )
        # the mortal worker really did serve its one batch, then died
        assert mortal.wait(timeout=10) == 0
        assert remote.executed == spec.unit_count
    finally:
        for process in (mortal, survivor):
            _stop_worker(process)


def test_worker_crash_after_persist_before_ack_does_not_duplicate(tmp_path):
    """The shadow-store crash window: the mortal worker persists its
    first fresh cell and dies *before* the digest ack leaves.  The
    orphaned batch must be re-dispatched (the cell re-runs from the same
    pure inputs, re-persisting identical bytes under the same
    content-addressed name) and the final store must match serial
    exactly — the cell appears once, never doubled."""
    mortal, mortal_address = _start_worker("--crash-after-persist", "1")
    survivor, survivor_address = _start_worker()
    try:
        spec = _echo_spec(cells=8, runs=2, name="echo-persist-crash",
                          trial=slow_echo_trial)
        serial_store = exp.ResultStore(tmp_path / "serial")
        remote_store = exp.ResultStore(tmp_path / "remote")
        serial = exp.run(spec, jobs=1, backend="serial", store=serial_store)
        backend = distributed.RemoteBackend(
            [mortal_address, survivor_address], batch_timeout=30.0
        )
        remote = exp.run(spec, batch=1, backend=backend, store=remote_store)
        assert _dump(serial) == _dump(remote)
        assert _store_bytes(tmp_path / "serial") == _store_bytes(
            tmp_path / "remote"
        )
        # the mortal worker persisted its cell, then exited deliberately
        assert mortal.wait(timeout=10) == 0
        shadow_cells = [
            p for p in Path(mortal.shadow_dir).rglob("*.json")
            if p.name != "manifest.json"
        ]
        assert shadow_cells, "the crash hook fired before any persist"
        # the coordinator saw every cell exactly once
        assert remote.cells_acked_digest == len(spec.trials)
        assert remote.executed == spec.unit_count
    finally:
        for process in (mortal, survivor):
            _stop_worker(process)


def test_all_workers_dead_raises_distributed_error():
    # ports that were bound and closed: connections will be refused
    dead = [f"127.0.0.1:{distributed.free_port()}" for _ in range(2)]
    backend = distributed.RemoteBackend(dead, connect_timeout=0.5)
    with pytest.raises(exp.DistributedError, match="worker"):
        exp.run(_echo_spec(cells=4, name="echo-dead"), batch=1,
                backend=backend)


def test_trial_error_on_worker_aborts_the_run(two_workers):
    spec = exp.ExperimentSpec(
        name="echo-error", trial=raising_trial,
        trials=(exp.Trial(key="c0", params={}, seeds=(1, 2)),),
    )
    with pytest.raises(exp.DistributedError, match="RuntimeError"):
        exp.run(spec, batch=1, workers=two_workers)


def raising_trial(seed, params):
    raise RuntimeError(f"boom at seed {seed}")
