"""Multi-coordinator sharding: split, merge, and byte-identity.

The load-bearing property: ``cell_hash`` covers the spec identity plus
*that cell's* key/params/seeds — never its siblings — so sub-specs
holding disjoint trial subsets write byte-identical cell files under the
same content-addressed names, and the post-hoc partition merge is a
conflict-free union whose result matches a single-coordinator serial
run byte for byte.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro import exp
from repro.eval import campaign

from tests.exp.test_distributed import _start_worker, _stop_worker


def _store_bytes(root):
    digests = {}
    for path in sorted(Path(root).rglob("*.json")):
        if path.name in ("manifest.json", "coordinator.json"):
            continue
        digests[str(path.relative_to(root))] = hashlib.sha256(
            path.read_bytes()
        ).hexdigest()
    return digests


def _campaign_spec(missions=16, seed=6000):
    return campaign.sharded_spec(missions=missions, base_seed=seed,
                                 requests=8, cell_size=4)


# -- split_spec --------------------------------------------------------------


def test_split_spec_preserves_cell_identity_and_covers_all_cells():
    spec = _campaign_spec()
    subs = exp.split_spec(spec, 3)
    assert len(subs) == 3
    seen = []
    for sub in subs:
        for trial in sub.trials:
            # the whole trick: the sub-spec cell hash equals the parent's
            assert exp.cell_hash(sub, trial) == exp.cell_hash(spec, trial)
            seen.append(trial.key)
    assert sorted(seen) == sorted(t.key for t in spec.trials)
    assert len(seen) == len(set(seen))  # disjoint partitions


def test_split_spec_clamps_to_cell_count():
    spec = _campaign_spec(missions=8)  # 2 cells
    subs = exp.split_spec(spec, 5)
    assert len(subs) == 2
    with pytest.raises(exp.ExperimentError):
        exp.split_spec(spec, 0)


def test_partition_roots_are_siblings_of_the_store_root(tmp_path):
    roots = exp.partition_roots(str(tmp_path / "store"), 2)
    assert [r.name for r in roots] == ["store.part0", "store.part1"]
    assert all(r.parent == tmp_path for r in roots)


# -- merge_stores ------------------------------------------------------------


def test_merge_stores_unions_disjoint_partitions_byte_identically(tmp_path):
    spec = _campaign_spec()
    reference = exp.ResultStore(tmp_path / "reference")
    exp.run(spec, jobs=1, backend="serial", store=reference)

    subs = exp.split_spec(spec, 2)
    parts = [exp.ResultStore(tmp_path / f"part{i}") for i in range(2)]
    for sub, part in zip(subs, parts):
        exp.run(sub, jobs=1, backend="serial", store=part)

    merged = exp.ResultStore(tmp_path / "merged")
    summary = exp.merge_stores(parts, merged)
    assert summary["files_copied"] == len(spec.trials)
    assert summary["files_identical"] == 0
    assert summary["specs"] == [spec.name]
    assert _store_bytes(tmp_path / "merged") == _store_bytes(
        tmp_path / "reference")


def test_merge_stores_tolerates_identical_overlap_and_rejects_conflicts(
        tmp_path):
    spec = _campaign_spec(missions=8)
    part_a = exp.ResultStore(tmp_path / "a")
    part_b = exp.ResultStore(tmp_path / "b")
    exp.run(spec, jobs=1, backend="serial", store=part_a)
    exp.run(spec, jobs=1, backend="serial", store=part_b)  # full overlap

    merged = exp.ResultStore(tmp_path / "merged")
    first = exp.merge_stores([part_a], merged)
    again = exp.merge_stores([part_b], merged)
    assert first["files_copied"] == len(spec.trials)
    assert again["files_copied"] == 0
    assert again["files_identical"] == len(spec.trials)

    # corrupt one partition cell: the merge must refuse, not pick a side
    victim = next(p for p in sorted((tmp_path / "b").rglob("*.json"))
                  if p.name != "manifest.json")
    victim.write_text(victim.read_text().replace("values", "valuez"))
    with pytest.raises(exp.MergeConflict):
        exp.merge_stores([part_b], merged)


def test_merged_store_replay_is_a_pure_cache_hit(tmp_path):
    spec = _campaign_spec(missions=8)
    subs = exp.split_spec(spec, 2)
    parts = [exp.ResultStore(tmp_path / f"part{i}") for i in range(2)]
    for sub, part in zip(subs, parts):
        exp.run(sub, jobs=1, backend="serial", store=part)
    merged = exp.ResultStore(tmp_path / "merged")
    exp.merge_stores(parts, merged)
    replay = exp.run(spec, jobs=1, backend="serial", store=merged)
    assert replay.cache_state == "full"
    assert replay.executed == 0


# -- run_multi_coordinator (live workers) ------------------------------------


def test_multi_coordinator_store_is_byte_identical_to_serial(tmp_path):
    workers = [_start_worker() for _ in range(2)]
    addresses = [address for _proc, address in workers]
    try:
        spec = _campaign_spec(missions=16, seed=6100)
        reference = exp.ResultStore(tmp_path / "reference")
        serial = exp.run(spec, jobs=1, backend="serial", store=reference)

        result, info = exp.run_multi_coordinator(
            spec, addresses, store_root=str(tmp_path / "merged"),
            coordinators=2, jobs=1,
        )
        assert info["coordinators"] == 2
        assert info["workers"] == [1, 1]
        assert info["merge"]["files_copied"] == len(spec.trials)
        assert json.dumps(serial.results, sort_keys=True) == json.dumps(
            result.results, sort_keys=True)
        assert _store_bytes(tmp_path / "merged") == _store_bytes(
            tmp_path / "reference")
        # digest-only returns end to end, partitions cleaned up
        assert result.cells_acked_digest == len(spec.trials)
        assert result.backend == "remote"
        assert not (tmp_path / "merged.part0").exists()
        assert not (tmp_path / "merged.part1").exists()
    finally:
        for process, _address in workers:
            _stop_worker(process)


def test_multi_coordinator_keep_partitions(tmp_path):
    workers = [_start_worker() for _ in range(2)]
    addresses = [address for _proc, address in workers]
    try:
        spec = _campaign_spec(missions=8, seed=6200)
        result, info = exp.run_multi_coordinator(
            spec, addresses, store_root=str(tmp_path / "merged"),
            coordinators=2, jobs=1, keep_partitions=True,
        )
        parts = [tmp_path / "merged.part0", tmp_path / "merged.part1"]
        assert all(p.is_dir() for p in parts)
        # each partition holds its coordinator's disjoint share
        part_cells = [
            {p.name for p in part.rglob("*.json")
             if p.name not in ("manifest.json", "coordinator.json")}
            for part in parts
        ]
        assert not (part_cells[0] & part_cells[1])
        assert len(part_cells[0] | part_cells[1]) == len(spec.trials)
        assert result.cache_state == "full"
    finally:
        for process, _address in workers:
            _stop_worker(process)


def test_multi_coordinator_requires_workers():
    spec = _campaign_spec(missions=8)
    with pytest.raises(exp.DistributedError, match="workers"):
        exp.run_multi_coordinator(spec, [], store_root="unused")
