"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


def test_cli_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "FTM catalog (6)" in out
    assert "scenario graph" in out


def test_cli_tables(capsys):
    assert main(["tables"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "Figure 8" in out


def test_cli_demo(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "state survived" in out


def test_cli_requires_command():
    with pytest.raises(SystemExit):
        main([])


def _reproduce_json(capsys, tmp_path, *extra):
    argv = [
        "reproduce", "--runs", "1", "--jobs", "1",
        "--store", str(tmp_path), "--json", *extra,
    ]
    assert main(argv) == 0
    return json.loads(capsys.readouterr().out)


def test_cli_reproduce_json_reports_run_config(capsys, tmp_path):
    report = _reproduce_json(capsys, tmp_path)
    assert report["runs"] == 1
    assert report["jobs"] == 1
    assert report["failures"] == []
    assert report["total_executed"] > 0
    titles = [a["title"] for a in report["artifacts"]]
    assert any("Table 3" in t for t in titles)


def test_cli_reproduce_second_run_hits_the_store(capsys, tmp_path):
    first = _reproduce_json(capsys, tmp_path)
    second = _reproduce_json(capsys, tmp_path)
    # acceptance criterion: warm store means zero trials simulated
    assert first["total_executed"] > 0
    assert second["total_executed"] == 0
    assert all(a["cached"] for a in second["artifacts"])
    assert [a["hash"] for a in first["artifacts"]] == [
        a["hash"] for a in second["artifacts"]
    ]


def test_cli_reproduce_fresh_ignores_the_store(capsys, tmp_path):
    baseline = _reproduce_json(capsys, tmp_path)
    forced = _reproduce_json(capsys, tmp_path, "--fresh")
    assert forced["total_executed"] == baseline["total_executed"] > 0


def test_cli_reproduce_seed_changes_results(capsys, tmp_path):
    base = _reproduce_json(capsys, tmp_path)
    shifted = _reproduce_json(capsys, tmp_path, "--seed", "1")
    # a different base seed must re-simulate under different spec hashes
    assert shifted["total_executed"] > 0
    assert [a["hash"] for a in base["artifacts"]] != [
        a["hash"] for a in shifted["artifacts"]
    ]
