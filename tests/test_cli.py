"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


def test_cli_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "FTM catalog (6)" in out
    assert "scenario graph" in out


def test_cli_tables(capsys):
    assert main(["tables"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "Figure 8" in out


def test_cli_demo(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "state survived" in out


def test_cli_requires_command():
    with pytest.raises(SystemExit):
        main([])


def _reproduce_json(capsys, tmp_path, *extra):
    argv = [
        "reproduce", "--runs", "1", "--jobs", "1",
        "--store", str(tmp_path), "--json", *extra,
    ]
    assert main(argv) == 0
    return json.loads(capsys.readouterr().out)


def test_cli_reproduce_json_reports_run_config(capsys, tmp_path):
    report = _reproduce_json(capsys, tmp_path)
    assert report["runs"] == 1
    assert report["jobs"] == 1
    assert report["failures"] == []
    assert report["total_executed"] > 0
    titles = [a["title"] for a in report["artifacts"]]
    assert any("Table 3" in t for t in titles)


def test_cli_reproduce_second_run_hits_the_store(capsys, tmp_path):
    first = _reproduce_json(capsys, tmp_path)
    second = _reproduce_json(capsys, tmp_path)
    # acceptance criterion: warm store means zero trials simulated
    assert first["total_executed"] > 0
    assert second["total_executed"] == 0
    assert all(a["cached"] for a in second["artifacts"])
    assert [a["hash"] for a in first["artifacts"]] == [
        a["hash"] for a in second["artifacts"]
    ]


def test_cli_reproduce_fresh_ignores_the_store(capsys, tmp_path):
    baseline = _reproduce_json(capsys, tmp_path)
    forced = _reproduce_json(capsys, tmp_path, "--fresh")
    assert forced["total_executed"] == baseline["total_executed"] > 0


def test_cli_reproduce_resume_rejects_no_store_and_fresh(capsys, tmp_path):
    assert main(["reproduce", "--resume", "--no-store"]) == 2
    assert main(["reproduce", "--resume", "--fresh",
                 "--store", str(tmp_path)]) == 2
    capsys.readouterr()


def test_cli_reproduce_resume_reports_cached_cells(capsys, tmp_path):
    first = _reproduce_json(capsys, tmp_path)
    resumed = _reproduce_json(capsys, tmp_path, "--resume")
    assert first["total_executed"] > 0
    assert resumed["total_executed"] == 0
    assert resumed["cells_cached"] > 0
    assert resumed["cells_executed"] == 0


def test_cli_campaign_reports_wilson_cis(capsys, tmp_path):
    argv = [
        "campaign", "--missions", "4", "--cell-size", "2",
        "--requests", "8", "--jobs", "1", "--store", str(tmp_path), "--json",
    ]
    assert main(argv) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["problems"] == []
    assert report["campaign"]["missions"] == 4
    assert report["campaign"]["shards"] == 2
    low, high = report["campaign"]["exactly_once_ci95"]
    assert 0.0 <= low <= high <= 1.0
    # a second invocation streams everything from the store
    assert main(argv) == 0
    cached = json.loads(capsys.readouterr().out)
    assert cached["trials_executed"] == 0
    assert cached["campaign"] == report["campaign"]


def test_cli_campaign_coschedule_matches_sequential(capsys, tmp_path):
    base = [
        "campaign", "--missions", "6", "--cell-size", "3", "--requests", "6",
        "--jobs", "1", "--no-store", "--json",
    ]
    assert main(base) == 0
    sequential = json.loads(capsys.readouterr().out)
    assert main(base + ["--coschedule", "3"]) == 0
    coscheduled = json.loads(capsys.readouterr().out)
    assert coscheduled["campaign"] == sequential["campaign"]
    assert coscheduled["coschedule"] == 3
    assert sequential["coschedule"] == 1


def test_cli_profile_prints_hot_spots(capsys):
    assert main(["profile", "table3", "--top", "5"]) == 0
    captured = capsys.readouterr()
    assert "function calls" in captured.out
    assert "cumulative" in captured.out
    assert "profiling spec 'table3'" in captured.err
    assert "units/s" in captured.err


def test_cli_profile_coschedule_lane(capsys):
    assert main([
        "profile", "campaign-sharded", "--missions", "4",
        "--requests", "3", "--coschedule", "2", "--top", "3",
    ]) == 0
    captured = capsys.readouterr()
    assert "coschedule=2" in captured.err
    assert "units/s" in captured.err
    assert "function calls" in captured.out


def test_cli_profile_rejects_unknown_spec(capsys):
    with pytest.raises(SystemExit):
        main(["profile", "nonsense"])
    capsys.readouterr()


def test_cli_store_list_gc_clear(capsys, tmp_path):
    _reproduce_json(capsys, tmp_path)
    assert main(["store", "--store", str(tmp_path)]) == 0
    listing = capsys.readouterr().out
    assert "table3" in listing and "cells" in listing
    assert main(["store", "--gc", "--store", str(tmp_path)]) == 0
    assert "gc: removed 0" in capsys.readouterr().out
    assert main(["store", "--clear", "--store", str(tmp_path)]) == 0
    assert "removed" in capsys.readouterr().out
    assert main(["store", "--store", str(tmp_path)]) == 0
    assert "empty" in capsys.readouterr().out


def test_cli_reproduce_seed_changes_results(capsys, tmp_path):
    base = _reproduce_json(capsys, tmp_path)
    shifted = _reproduce_json(capsys, tmp_path, "--seed", "1")
    # a different base seed must re-simulate under different spec hashes
    assert shifted["total_executed"] > 0
    assert [a["hash"] for a in base["artifacts"]] != [
        a["hash"] for a in shifted["artifacts"]
    ]


def test_cli_fleet_campaign_smoke(capsys, tmp_path):
    argv = [
        "fleet-campaign", "--hosts", "8", "--apps", "2", "--missions", "1",
        "--duration-ms", "4000", "--jobs", "1",
        "--store", str(tmp_path), "--json",
    ]
    assert main(argv) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["problems"] == []
    assert report["fleet"]["missions"] == 6  # 3 placements x 2 churn rates
    assert report["fleet"]["sent"] > 0
    assert report["fleet"]["ok"] > 0
    # a second invocation streams every cell from the store
    assert main(argv) == 0
    cached = json.loads(capsys.readouterr().out)
    assert cached["trials_executed"] == 0
    assert cached["fleet"] == report["fleet"]


def test_cli_fleet_campaign_coschedule_matches_sequential(capsys):
    base = [
        "fleet-campaign", "--hosts", "8", "--apps", "2", "--missions", "1",
        "--placements", "round-robin", "--churn", "2",
        "--duration-ms", "4000", "--jobs", "1", "--no-store", "--json",
    ]
    assert main(base) == 0
    sequential = json.loads(capsys.readouterr().out)
    assert main(base + ["--coschedule", "2"]) == 0
    coscheduled = json.loads(capsys.readouterr().out)
    assert coscheduled["fleet"] == sequential["fleet"]


def test_cli_bench_report_warns_instead_of_failing(capsys, tmp_path):
    # missing directory: warn and exit clean
    assert main(["bench", "--report", "--dir", str(tmp_path / "gone")]) == 0
    assert "does not exist" in capsys.readouterr().err
    # empty directory: warn and exit clean
    assert main(["bench", "--report", "--dir", str(tmp_path)]) == 0
    assert "no BENCH_*.json" in capsys.readouterr().err
    # unreadable file: warn on that row, keep going
    (tmp_path / "BENCH_bad.json").write_text("{not json")
    (tmp_path / "BENCH_ok.json").write_text(json.dumps(
        {"rows": [{"scenario": "s", "missions_per_sec": 2.0}]}
    ))
    assert main(["bench", "--report", "--dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "warning: unreadable" in out
    assert "BENCH_ok.json" in out
