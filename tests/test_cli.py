"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def test_cli_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "FTM catalog (6)" in out
    assert "scenario graph" in out


def test_cli_tables(capsys):
    assert main(["tables"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "Figure 8" in out


def test_cli_demo(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "state survived" in out


def test_cli_requires_command():
    with pytest.raises(SystemExit):
        main([])
