"""Property-based tests over blueprints, diffs, scripts and the FT model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.consistency import evaluate_ftm
from repro.core.parameters import (
    ApplicationCharacteristics,
    FaultClass,
    FaultToleranceRequirements,
    ResourceState,
    SystemContext,
)
from repro.core.repository import spec_architecture
from repro.core.transition_graph import select_target
from repro.ftm import FTM_NAMES, ftm_assembly, variable_feature_distance
from repro.patterns import CounterServer, Request
from repro.patterns.tmr import majority_voter
from repro.script import parse, render, script_from_diff, validate_script
from repro.script.errors import ScriptSyntaxError

ftm_names = st.sampled_from(FTM_NAMES)

contexts = st.builds(
    SystemContext,
    ft=st.builds(
        FaultToleranceRequirements,
        fault_classes=st.frozensets(
            st.sampled_from(
                [FaultClass.CRASH, FaultClass.TRANSIENT_VALUE, FaultClass.PERMANENT_VALUE]
            ),
            min_size=1,
        ),
    ),
    a=st.builds(
        ApplicationCharacteristics,
        deterministic=st.booleans(),
        state_accessible=st.booleans(),
    ),
    r=st.builds(
        ResourceState,
        bandwidth_ok=st.booleans(),
        cpu_ok=st.booleans(),
    ),
)


# -- blueprint diff algebra ------------------------------------------------------


@given(ftm_names)
def test_diff_with_self_is_identity(ftm):
    spec = ftm_assembly(ftm, role="master", peer="beta")
    assert spec.diff(spec).is_identity


@given(ftm_names, ftm_names)
def test_diff_component_count_equals_feature_distance(a, b):
    spec_a = ftm_assembly(a, role="master", peer="beta")
    spec_b = ftm_assembly(b, role="master", peer="beta")
    assert spec_a.diff(spec_b).touched_component_count == variable_feature_distance(a, b)


@given(ftm_names, ftm_names)
def test_diff_is_antisymmetric(a, b):
    spec_a = ftm_assembly(a, role="master", peer="beta")
    spec_b = ftm_assembly(b, role="master", peer="beta")
    forward = spec_a.diff(spec_b)
    backward = spec_b.diff(spec_a)
    assert {s.name for s in forward.new_components()} == {
        s.name for s in backward.new_components()
    }
    assert forward.wires_added == backward.wires_removed
    assert forward.wires_removed == backward.wires_added


@given(ftm_names, ftm_names)
def test_generated_scripts_always_validate(a, b):
    """Off-line validation accepts every catalog-to-catalog transition."""
    spec_a = ftm_assembly(a, role="master", peer="beta")
    spec_b = ftm_assembly(b, role="master", peer="beta")
    diff = spec_a.diff(spec_b)
    script = script_from_diff(diff, "ftm")
    problems = validate_script(
        script,
        {"ftm": spec_architecture(spec_a)},
        [s.name for s in diff.new_components()],
    )
    assert problems == []


@given(ftm_names, ftm_names)
def test_script_roundtrips_through_render(a, b):
    spec_a = ftm_assembly(a, role="master", peer="beta")
    spec_b = ftm_assembly(b, role="master", peer="beta")
    script = script_from_diff(spec_a.diff(spec_b), "ftm")
    assert parse(render(script)) == script


@given(st.text(max_size=60))
@settings(max_examples=200)
def test_parser_never_crashes_unexpectedly(text):
    """The parser either parses or raises ScriptSyntaxError — never anything else."""
    try:
        parse(text)
    except ScriptSyntaxError:
        pass


# -- (FT, A, R) model -----------------------------------------------------------------


@given(ftm_names, contexts)
def test_validity_reasons_accompany_invalidity(ftm, context):
    report = evaluate_ftm(ftm, context)
    if not report.valid:
        assert report.reasons
    assert report.cost >= 0


@given(contexts)
def test_selected_target_is_always_valid(context):
    target = select_target(None, context)
    if target is not None:
        assert evaluate_ftm(target, context).valid


@given(ftm_names, contexts)
def test_select_target_is_idempotent(ftm, context):
    """Once on the selected target, re-selection does not move again."""
    target = select_target(ftm, context)
    if target is not None:
        assert select_target(target, context) == target


@given(contexts)
def test_no_generic_solution_iff_nondeterministic_without_state(context):
    target = select_target(None, context)
    hopeless = (
        not context.a.deterministic and not context.a.state_accessible
    ) or (
        not context.a.deterministic
        and context.ft.names() - {"crash"}  # value faults need determinism
    )
    if hopeless:
        assert target is None
    else:
        assert target is not None


# -- at-most-once & voting ----------------------------------------------------------------


@given(st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=30))
def test_at_most_once_under_arbitrary_duplication(request_ids):
    """However requests are duplicated/reordered, each id executes once."""
    from repro.patterns import PBR, LocalLink, Role

    master = PBR(CounterServer(), role=Role.MASTER)
    slave = PBR(CounterServer(), role=Role.SLAVE)
    LocalLink(master, slave)
    for request_id in request_ids:
        master.handle_request(Request(request_id, "client", ("add", 1)))
    assert master.server.total == len(set(request_ids))


@given(st.lists(st.integers(min_value=0, max_value=3), min_size=3, max_size=3))
def test_majority_voter_agrees_with_any_two_equal(results):
    from repro.patterns import UnmaskedFaultError

    counts = {value: results.count(value) for value in results}
    best = max(counts.values())
    if best >= 2:
        decision = majority_voter(results)
        assert results.count(decision) >= 2
    else:
        try:
            majority_voter(results)
            assert False, "expected UnmaskedFaultError"
        except UnmaskedFaultError:
            pass
