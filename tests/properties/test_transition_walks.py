"""Property: any random walk over the FTM catalog keeps the service intact."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AdaptationEngine
from repro.ftm import FTM_NAMES, Client, deploy_ftm_pair
from repro.kernel import World


@given(
    walk=st.lists(st.sampled_from(FTM_NAMES), min_size=1, max_size=5),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=15, deadline=None)
def test_random_transition_walk_preserves_service(walk, seed):
    world = World(seed=seed)
    world.add_nodes(["alpha", "beta", "client"])

    def scenario():
        pair = yield from deploy_ftm_pair(
            world, "pbr", ["alpha", "beta"], assertion="counter-range"
        )
        engine = AdaptationEngine(world, pair)
        client = Client(
            world, world.cluster.node("client"), "c1", pair.node_names()
        )
        total = 0
        for target in walk:
            reply = yield from client.request(("add", 1))
            total += 1
            assert reply.ok and reply.value == total
            yield from engine.transition(target)
            assert pair.ftm == target
        reply = yield from client.request(("get",))
        assert reply.value == total  # state survived the whole walk
        # architecture is exactly the target FTM's blueprint, no residue
        for index, replica in enumerate(pair.replicas):
            architecture = replica.composite.architecture()
            assert len(architecture["components"]) == 7
            assert all(
                state == "started" for state in architecture["components"].values()
            )
        return total

    world.run_process(scenario(), name="walk")


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_transition_timing_is_deterministic_per_seed(seed):
    def measure():
        world = World(seed=seed)
        world.add_nodes(["alpha", "beta"])

        def do():
            pair = yield from deploy_ftm_pair(world, "pbr", ["alpha", "beta"])
            engine = AdaptationEngine(world, pair)
            report = yield from engine.transition("lfr")
            return report.per_replica_ms

        return world.run_process(do(), name="measure")

    assert measure() == measure()
