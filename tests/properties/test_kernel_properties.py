"""Property-based tests over the simulation kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel import Channel, Simulator, World, bit_flip
from repro.kernel.rand import DeterministicRandom


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
def test_scheduled_callbacks_fire_in_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append((sim.now, d)))
    sim.run()
    times = [t for t, _d in fired]
    assert times == sorted(times)
    assert len(fired) == len(delays)
    for fire_time, delay in fired:
        assert fire_time == delay


@given(st.lists(st.integers(), min_size=0, max_size=40))
def test_channel_is_fifo_for_any_item_sequence(items):
    sim = Simulator()
    channel = Channel(sim)
    for item in items:
        channel.put(item)

    def getter():
        received = []
        for _ in items:
            value = yield channel.get()
            received.append(value)
        return received

    assert sim.run_process(getter()) == items


@given(
    st.lists(
        st.tuples(st.floats(min_value=0.01, max_value=100.0), st.integers()),
        min_size=1,
        max_size=20,
    )
)
def test_interleaved_puts_preserve_order(schedule):
    """Items put at increasing times arrive in exactly that order."""
    sim = Simulator()
    channel = Channel(sim)
    time = 0.0
    expected = []
    for delay, item in schedule:
        time += delay
        sim.schedule(time, channel.put, item)
        expected.append(item)

    def getter():
        received = []
        for _ in expected:
            value = yield channel.get()
            received.append(value)
        return received

    assert sim.run_process(getter()) == expected


@given(
    st.one_of(
        st.booleans(),
        st.integers(min_value=-(2**40), max_value=2**40),
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        st.text(max_size=30),
        st.binary(max_size=30),
        st.lists(st.integers(), max_size=5),
    ),
    st.integers(min_value=0, max_value=63),
)
def test_bit_flip_always_changes_the_value(value, bit):
    assert bit_flip(value, bit) != value


@given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=20))
def test_deterministic_random_substreams_are_reproducible(seed, name):
    a = DeterministicRandom(seed).substream(name)
    b = DeterministicRandom(seed).substream(name)
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


@given(st.integers(min_value=0, max_value=2**31))
@settings(max_examples=20)
def test_substreams_are_independent_of_sibling_consumption(seed):
    """Consuming one substream never perturbs another (stable experiments)."""
    root1 = DeterministicRandom(seed)
    network1 = root1.substream("network")
    draws1 = [network1.random() for _ in range(3)]

    root2 = DeterministicRandom(seed)
    other = root2.substream("faults")
    for _ in range(100):
        other.random()  # heavy consumption of a *different* stream
    network2 = root2.substream("network")
    draws2 = [network2.random() for _ in range(3)]
    assert draws1 == draws2


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_world_trace_is_seed_deterministic(seed):
    def run():
        world = World(seed=seed)
        world.add_node("alpha")
        world.add_node("beta")
        mailbox = world.network.bind("beta", "in")

        def receiver():
            for _ in range(5):
                yield mailbox.get()

        process = world.sim.spawn(receiver())
        for index in range(5):
            world.network.send("alpha", "beta", "in", payload=index, size=100 * (index + 1))
        world.run()
        return [(r.time, r.category, r.event) for r in world.trace.records], world.now

    assert run() == run()
