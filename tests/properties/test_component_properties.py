"""Property-based tests over the component model's lifecycle and gate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.components import (
    AssemblySpec,
    ComponentImpl,
    ComponentSpec,
    LifecycleError,
    LifecycleState,
    PromotionSpec,
    make_runtime,
)
from repro.kernel import Timeout, World


class Worker(ComponentImpl):
    SERVICES = {"io": ("work",)}

    def work(self, duration):
        yield Timeout(duration)
        return "done"


def build_world():
    world = World(seed=5)
    node = world.add_node("alpha")
    runtime = make_runtime(world, node)
    spec = AssemblySpec(
        name="c",
        components=(ComponentSpec.make("w", Worker),),
        wires=(),
        promotions=(PromotionSpec("front", "w", "io"),),
    )
    composite = world.run_process(runtime.deploy(spec), name="deploy")
    return world, runtime, composite


#: lifecycle operations the fuzzer may attempt
OPS = st.lists(
    st.sampled_from(["start", "stop", "call"]), min_size=1, max_size=25
)


@given(OPS)
@settings(max_examples=40, deadline=None)
def test_lifecycle_never_corrupts_in_flight_accounting(operations):
    """Any legal/illegal op sequence leaves the component quiescent at rest."""
    world, runtime, composite = build_world()
    component = composite.component("w")

    def driver():
        for operation in operations:
            if operation == "start":
                try:
                    component.start()
                except LifecycleError:
                    pass
            elif operation == "stop":
                yield from runtime.stop_component("c", "w")
            else:
                if component.started:
                    result = yield from component.call("io", "work", 1.0)
                    assert result == "done"

    world.run_process(driver(), name="driver")
    assert component.quiescent
    assert component.state in (LifecycleState.STARTED, LifecycleState.STOPPED)


@given(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=8))
@settings(max_examples=25, deadline=None)
def test_gate_conserves_requests(before_count, during_count):
    """close → buffered, open → drained; never lost, never duplicated."""
    world, _runtime, composite = build_world()
    served = []

    def caller(tag):
        result = yield from composite.call("front", "work", 0.5)
        served.append((tag, result))

    for index in range(before_count):
        world.sim.spawn(caller(("before", index)))
    world.run(until=world.now + 50.0)

    composite.close_gate()
    for index in range(during_count):
        world.sim.spawn(caller(("during", index)))
    world.run(until=world.now + 50.0)
    assert len(served) == before_count  # buffered while closed

    composite.open_gate()
    world.run(until=world.now + 50.0)
    assert len(served) == before_count + during_count
    assert len(set(served)) == len(served)  # exactly once each


@given(st.lists(st.booleans(), min_size=1, max_size=10))
@settings(max_examples=25, deadline=None)
def test_gate_toggling_is_safe(toggles):
    world, _runtime, composite = build_world()
    for open_it in toggles:
        if open_it:
            composite.open_gate()
        else:
            composite.close_gate()
    composite.open_gate()

    def check():
        result = yield from composite.call("front", "work", 0.5)
        return result

    assert world.run_process(check(), name="check") == "done"
