"""Property: atomic broadcast keeps total order under random message loss."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ftm.broadcast import AtomicBroadcast
from repro.kernel import World

MEMBERS = ["n1", "n2", "n3"]


@given(
    seed=st.integers(min_value=0, max_value=5_000),
    message_count=st.integers(min_value=1, max_value=12),
    drop_indices=st.sets(st.integers(min_value=0, max_value=40), max_size=4),
)
@settings(max_examples=20, deadline=None)
def test_total_order_survives_random_delivery_drops(seed, message_count, drop_indices):
    world = World(seed=seed)
    world.add_nodes(MEMBERS + ["client"])
    ab = AtomicBroadcast(world, MEMBERS, nack_timeout=80.0)
    delivered = {member: [] for member in MEMBERS}
    for member in MEMBERS:
        ab.subscribe(member, lambda d, m=member: delivered[m].append(d))
    ab.start()

    counter = {"n": 0}

    def maybe_drop(message):
        if message.port == "ab-deliver":
            index = counter["n"]
            counter["n"] += 1
            if index in drop_indices:
                return None
        return message

    world.network.add_delivery_filter(maybe_drop)

    for index in range(message_count):
        world.sim.schedule(
            float(index * 15), ab.broadcast, MEMBERS[index % 3], index
        )
    world.run(until=6_000.0)

    expected = list(range(message_count))
    for member in MEMBERS:
        payloads = [d.payload for d in delivered[member]]
        assert payloads == expected, (member, payloads)
        sequences = [d.sequence for d in delivered[member]]
        assert sequences == sorted(sequences)
