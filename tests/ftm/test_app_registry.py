"""Tests for the application/assertion registry and the built-in servers."""

import pytest

from repro.app import (
    application_info,
    create_application,
    get_assertion,
    register_application,
    register_assertion,
    registered_applications,
)
from repro.patterns import CounterServer, KeyValueServer, NonDeterministicServer


def test_builtin_catalog_present():
    apps = registered_applications()
    assert {"counter", "kv-store", "sensor-fusion"} <= set(apps)
    assert apps["counter"].deterministic
    assert apps["counter"].state_accessible
    assert not apps["sensor-fusion"].deterministic


def test_unknown_application_rejected():
    with pytest.raises(KeyError, match="unknown application"):
        application_info("nope")


def test_unknown_assertion_rejected():
    with pytest.raises(KeyError, match="unknown assertion"):
        get_assertion("nope")


def test_double_registration_rejected():
    with pytest.raises(ValueError):
        register_application("counter", CounterServer, True, True)
    with pytest.raises(ValueError):
        register_assertion("counter-range", lambda p, r: True)


def test_create_application_fresh_instances():
    a = create_application("counter")
    b = create_application("counter")
    assert a is not b
    a.process(("add", 1))
    assert b.total == 0


def test_builtin_assertions_behave():
    in_range = get_assertion("counter-range")
    assert in_range(None, 5)
    assert not in_range(None, -1)
    assert not in_range(None, "text")
    assert get_assertion("result-not-none")(None, 0)
    assert not get_assertion("result-not-none")(None, None)
    assert get_assertion("always-true")(None, None)


# -- concrete servers ------------------------------------------------------------


def test_kv_server_operations():
    kv = KeyValueServer()
    assert kv.process(("put", "k", 1)) == "ok"
    assert kv.process(("get", "k")) == 1
    assert kv.process(("delete", "k")) == 1
    assert kv.process(("get", "k")) is None
    with pytest.raises(ValueError):
        kv.process(("drop-table",))


def test_kv_server_state_roundtrip_is_deep():
    kv = KeyValueServer()
    kv.process(("put", "k", [1, 2]))
    snapshot = kv.capture_state()
    kv.process(("put", "k", [9]))
    kv.restore_state(snapshot)
    assert kv.process(("get", "k")) == [1, 2]
    # the snapshot is isolated from later mutation
    snapshot["k"].append(99)
    assert kv.process(("get", "k")) == [1, 2]


def test_counter_server_rejects_unknown_payload():
    with pytest.raises(ValueError):
        CounterServer().process("gibberish")


def test_non_deterministic_server_diverges_across_instances():
    a = NonDeterministicServer(seed=1)
    b = NonDeterministicServer(seed=2)
    assert a.process("x") != b.process("x")
