"""Fault-injection tests: the FTMs must actually tolerate their fault models."""

import pytest

from repro.ftm import Client, deploy_ftm_pair
from repro.kernel import Timeout, World


def make_world(seed=20):
    world = World(seed=seed)
    world.add_nodes(["alpha", "beta", "client"])
    return world


def deploy(world, ftm, **kwargs):
    def do():
        pair = yield from deploy_ftm_pair(world, ftm, ["alpha", "beta"], **kwargs)
        return pair

    return world.run_process(do(), name="deploy")


def make_client(world, pair, name="c1", **kwargs):
    return Client(
        world, world.cluster.node("client"), name, pair.node_names(), **kwargs
    )


# -- crash faults (duplex strategies) ----------------------------------------------


@pytest.mark.parametrize("ftm", ["pbr", "lfr"])
def test_master_crash_failover_serves_all_requests(ftm):
    world = make_world()
    pair = deploy(world, ftm)
    client = make_client(world, pair)

    # crash the master in the middle of the workload
    world.faults.schedule_crash(world.cluster.node("alpha"), at=world.now + 2_000)

    def workload():
        replies = []
        for index in range(8):
            reply = yield from client.request(("add", 1))
            replies.append(reply)
            yield Timeout(500.0)
        return replies

    replies = world.run_process(workload(), name="workload")
    assert all(r.ok for r in replies)
    assert [r.value for r in replies] == list(range(1, 9))
    # the slave was promoted and served the tail of the workload
    assert world.trace.count("ftm", "promoted") == 1
    assert replies[-1].served_by == "beta"
    assert client.retransmissions >= 1


def test_pbr_failover_continues_from_checkpointed_state():
    world = make_world()
    pair = deploy(world, "pbr")
    client = make_client(world, pair)

    def phase1():
        for _ in range(3):
            yield from client.request(("add", 10))
        yield Timeout(100.0)  # let the last checkpoint land

    world.run_process(phase1(), name="phase1")
    world.cluster.node("alpha").crash()

    def phase2():
        reply = yield from client.request(("get",))
        return reply

    reply = world.run_process(phase2(), name="phase2")
    assert reply.value == 30  # no state lost


def test_slave_crash_master_continues_alone():
    world = make_world()
    pair = deploy(world, "pbr")
    client = make_client(world, pair)
    world.cluster.node("beta").crash()

    def workload():
        yield Timeout(200.0)  # FD detects the slave crash
        reply = yield from client.request(("add", 5))
        return reply

    reply = world.run_process(workload(), name="workload")
    assert reply.ok
    assert world.trace.count("ftm", "master_alone") == 1


def test_failure_detector_latency_is_bounded():
    world = make_world()
    pair = deploy(world, "pbr", fd_period=20.0, fd_timeout=60.0)
    crash_at = world.now + 500.0
    world.faults.schedule_crash(world.cluster.node("alpha"), at=crash_at)
    world.run(until=crash_at + 400.0)
    suspicion = world.trace.last("ftm", "peer_suspected")
    assert suspicion is not None
    assert suspicion.time - crash_at < 200.0


# -- transient value faults -------------------------------------------------------------


def test_tr_masks_transient_value_faults():
    world = make_world()
    pair = deploy(world, "pbr+tr")
    client = make_client(world, pair)
    # one guaranteed transient fault on the master's next computation
    world.faults.arm_transient("alpha", probability=1.0, budget=1)

    def workload():
        reply = yield from client.request(("add", 5))
        return reply

    reply = world.run_process(workload(), name="workload")
    assert reply.ok
    assert reply.value == 5
    assert world.trace.count("ftm", "tr_masked") == 1


def test_lfr_tr_follower_masks_its_own_transients():
    world = make_world()
    pair = deploy(world, "lfr+tr")
    client = make_client(world, pair)
    world.faults.arm_transient("beta", probability=1.0, budget=1)

    def workload():
        reply = yield from client.request(("add", 5))
        yield Timeout(200.0)
        return reply

    reply = world.run_process(workload(), name="workload")
    assert reply.value == 5
    follower = pair.replica_on("beta").composite.component("server").implementation
    assert follower.application.total == 5
    assert world.trace.count("ftm", "tr_masked") == 1


def test_plain_pbr_does_not_mask_value_faults():
    """Why the FT-change trigger exists: PBR lets value faults through."""
    world = make_world()
    pair = deploy(world, "pbr")
    client = make_client(world, pair)
    world.faults.arm_transient("alpha", probability=1.0, budget=1)

    def workload():
        reply = yield from client.request(("add", 5))
        return reply

    reply = world.run_process(workload(), name="workload")
    assert reply.ok
    assert reply.value != 5  # the corrupted value reached the client


def test_tr_repeated_faults_eventually_unmasked():
    world = make_world()
    pair = deploy(world, "pbr+tr")
    client = make_client(world, pair, max_attempts=2, timeout=2_000.0)
    # corrupt EVERY execution: 2-of-3 voting cannot find a pair... results
    # may coincide by chance; budget is generous so at least the error path
    # is exercised deterministically with this seed
    world.faults.arm_permanent("alpha")

    def workload():
        reply = yield from client.request(("add", 5))
        return reply

    reply = world.run_process(workload(), name="workload")
    # either the vote failed (unmasked error surfaced honestly) or two
    # corrupted runs agreed (a known TR limitation under permanent faults)
    if not reply.ok:
        assert "pairwise-different" in reply.error or "assertion" in reply.error
    assert world.trace.count("ftm", "tr_mismatch") >= 1


# -- permanent value faults (A&Duplex) ------------------------------------------------------


def test_a_pbr_masks_permanent_fault_via_backup_reexecution():
    world = make_world()
    pair = deploy(world, "a+pbr", assertion="counter-range")
    client = make_client(world, pair)

    # permanent fault: master's computations systematically corrupted;
    # bit flips can stay inside the assertion envelope, so use a big total
    def workload():
        reply = yield from client.request(("add", 2_000_000))  # out of range
        return reply

    # make the assertion bite: result must be < 1_000_000
    world.faults.arm_permanent("alpha")

    def workload2():
        reply = yield from client.request(("add", 5))
        return reply

    reply = world.run_process(workload2(), name="workload")
    if world.trace.count("ftm", "assertion_failed") > 0:
        # the corrupted result violated the envelope and the backup rescued it
        assert world.trace.count("ftm", "assertion_recovered") == 1
        assert reply.ok and reply.value == 5


def test_a_pbr_assertion_failure_recovered_deterministically():
    world = make_world()
    # register a strict assertion so ANY corruption is caught
    from repro.app import register_assertion

    try:
        register_assertion("exactly-five", lambda _p, r: r == 5)
    except ValueError:
        pass
    pair = deploy(world, "a+pbr", assertion="exactly-five")
    client = make_client(world, pair)
    world.faults.arm_transient("alpha", probability=1.0, budget=1)

    def workload():
        reply = yield from client.request(("add", 5))
        return reply

    reply = world.run_process(workload(), name="workload")
    assert reply.ok
    assert reply.value == 5
    assert world.trace.count("ftm", "assertion_failed") == 1
    assert world.trace.count("ftm", "assertion_recovered") == 1
    # the master adopted the backup's state
    master = pair.replica_on("alpha").composite.component("server").implementation
    assert master.application.total == 5


# -- recovery / reintegration ------------------------------------------------------------------


def test_crashed_replica_reintegrates_with_state():
    world = make_world()
    pair = deploy(world, "pbr")
    pair.enable_recovery(restart_delay=300.0)
    client = make_client(world, pair)

    def workload():
        for _ in range(3):
            yield from client.request(("add", 10))
        # crash the master; the slave takes over
        world.cluster.node("alpha").crash()
        yield Timeout(100.0)
        reply = yield from client.request(("add", 10))
        # wait for alpha to restart, redeploy and reintegrate (~4.5 s)
        yield Timeout(6_000.0)
        return reply

    reply = world.run_process(workload(), name="workload")
    assert reply.value == 40
    assert pair.reintegrations == 1
    # alpha is back as a slave with the transferred state
    alpha_replica = pair.replica_on("alpha")
    assert alpha_replica.alive
    assert alpha_replica.role() == "slave"
    alpha_server = alpha_replica.composite.component("server").implementation
    assert alpha_server.application.total == 40


def test_second_crash_after_reintegration_is_tolerated():
    world = make_world()
    pair = deploy(world, "pbr")
    pair.enable_recovery(restart_delay=300.0)
    client = make_client(world, pair)

    def workload():
        yield from client.request(("add", 1))
        world.cluster.node("alpha").crash()
        yield Timeout(6_000.0)  # beta master, alpha reintegrated as slave
        yield from client.request(("add", 1))
        world.cluster.node("beta").crash()
        yield Timeout(6_000.0)  # alpha promoted again, beta reintegrated
        reply = yield from client.request(("add", 1))
        return reply

    reply = world.run_process(workload(), name="workload")
    assert reply.ok
    assert reply.value == 3
    assert pair.reintegrations == 2
    assert world.trace.count("ftm", "promoted") == 2
