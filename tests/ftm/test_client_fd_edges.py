"""Edge-case tests: clients, failure detector, monitoring probes."""

import pytest

from repro.core import MonitoringEngine, Thresholds
from repro.ftm import Client, FTMError, deploy_ftm_pair
from repro.kernel import Timeout, World


def make_world(seed=95):
    world = World(seed=seed)
    world.add_nodes(["alpha", "beta", "client"])
    return world


def deploy(world, ftm="pbr", **kwargs):
    def do():
        pair = yield from deploy_ftm_pair(world, ftm, ["alpha", "beta"], **kwargs)
        return pair

    return world.run_process(do(), name="deploy")


# -- client edge cases ------------------------------------------------------------


def test_client_requires_targets():
    world = make_world()
    with pytest.raises(ValueError):
        Client(world, world.cluster.node("client"), "c1", [])


def test_client_gives_up_after_max_attempts():
    world = make_world()
    deploy(world)
    # both replicas die: nobody will ever answer
    world.cluster.node("alpha").crash()
    world.cluster.node("beta").crash()
    client = Client(
        world, world.cluster.node("client"), "c1", ["alpha", "beta"],
        timeout=100.0, max_attempts=3,
    )

    def do():
        yield from client.request(("add", 1))

    with pytest.raises(FTMError, match="no reply"):
        world.run_process(do(), name="doomed")
    assert client.retransmissions == 2  # attempts - 1


def test_client_counts_retransmissions_on_failover():
    world = make_world()
    pair = deploy(world)
    world.cluster.node("alpha").crash()
    client = Client(
        world, world.cluster.node("client"), "c1", pair.node_names(),
        timeout=300.0,
    )

    def do():
        reply = yield from client.request(("add", 1))
        return reply

    reply = world.run_process(do(), name="retry")
    assert reply.ok
    assert client.retransmissions >= 1
    assert reply.served_by == "beta"


def test_client_survives_partition_heal():
    world = make_world()
    pair = deploy(world)
    client = Client(
        world, world.cluster.node("client"), "c1", pair.node_names(),
        timeout=250.0, max_attempts=20,
    )
    world.network.partition(["client"], ["alpha", "beta"])
    world.sim.schedule(900.0, world.network.heal)

    def do():
        reply = yield from client.request(("add", 1))
        return reply

    reply = world.run_process(do(), name="partitioned")
    assert reply.ok and reply.value == 1


def test_client_mailboxes_are_cleaned_up():
    world = make_world()
    pair = deploy(world)
    client = Client(world, world.cluster.node("client"), "c1", pair.node_names())

    def do():
        for _ in range(5):
            yield from client.request(("add", 1))

    world.run_process(do(), name="load")
    leftover = [
        port for (node, port) in world.network._mailboxes
        if node == "client" and port.startswith("reply-")
    ]
    assert leftover == []


# -- failure detector edge cases ----------------------------------------------------


def fd_of(pair, node_name):
    return (
        pair.replica_on(node_name)
        .composite.component("failureDetector")
        .implementation
    )


def test_fd_does_not_false_suspect_under_normal_operation():
    world = make_world()
    pair = deploy(world)
    world.run(until=world.now + 5_000.0)
    assert not fd_of(pair, "alpha").suspected
    assert not fd_of(pair, "beta").suspected


def test_fd_suspend_blocks_suspicion():
    world = make_world()
    pair = deploy(world)

    def do():
        yield from pair.replicas[1].composite.call("fd", "suspend")

    world.run_process(do(), name="suspend")
    world.cluster.node("alpha").crash()
    world.run(until=world.now + 1_000.0)
    assert not fd_of(pair, "beta").suspected  # suspended: no reaction


def test_fd_resume_restores_detection():
    world = make_world()
    pair = deploy(world)

    def do():
        yield from pair.replicas[1].composite.call("fd", "suspend")
        yield Timeout(200.0)
        yield from pair.replicas[1].composite.call("fd", "resume")

    world.run_process(do(), name="toggle")
    world.cluster.node("alpha").crash()
    world.run(until=world.now + 1_000.0)
    assert fd_of(pair, "beta").suspected


def test_fd_status_reports_counters():
    world = make_world()
    pair = deploy(world)
    world.run(until=world.now + 500.0)

    def do():
        status = yield from pair.replicas[0].composite.call("fd", "status")
        return status

    status = world.run_process(do(), name="status")
    assert status["heartbeats_seen"] > 5
    assert status["suspected"] is False


# -- monitoring probes -----------------------------------------------------------------


def test_cpu_probe_requires_sustained_saturation():
    world = make_world()
    pair = deploy(world)
    monitoring = MonitoringEngine(
        world, ["alpha", "beta"],
        thresholds=Thresholds(cpu_sustain_samples=4),
    )
    monitoring.start()

    # a busy-loop process saturating alpha for ~2 s
    def burn():
        node = world.cluster.node("alpha")
        for _ in range(80):
            yield from node.compute(25.0)

    world.cluster.node("alpha").spawn(burn(), name="burn")
    world.run(until=world.now + 3_000.0)
    drops = [t for t in monitoring.trigger_history if t.event == "cpu-drop"]
    assert len(drops) == 1
    # recovery trigger after the burn ends
    world.run(until=world.now + 2_000.0)
    ups = [t for t in monitoring.trigger_history if t.event == "cpu-increase"]
    assert len(ups) == 1


def test_short_burst_does_not_trigger_cpu_probe():
    world = make_world()
    pair = deploy(world)
    monitoring = MonitoringEngine(world, ["alpha", "beta"])
    monitoring.start()

    def burst():
        node = world.cluster.node("alpha")
        for _ in range(20):
            yield from node.compute(25.0)  # ~500 ms of saturation

    world.cluster.node("alpha").spawn(burst(), name="burst")
    world.run(until=world.now + 3_000.0)
    assert not any(t.event == "cpu-drop" for t in monitoring.trigger_history)


def test_monitoring_samples_accumulate():
    world = make_world()
    deploy(world)
    monitoring = MonitoringEngine(world, ["alpha", "beta"], period=100.0)
    monitoring.start()
    world.run(until=world.now + 1_050.0)
    assert len(monitoring.samples) == 10
    sample = monitoring.samples[-1]
    assert set(sample["nodes"]) == {"alpha", "beta"}
    assert sample["bandwidth"] is not None


def test_monitoring_stop_halts_sampling():
    world = make_world()
    deploy(world)
    monitoring = MonitoringEngine(world, ["alpha", "beta"], period=100.0)
    monitoring.start()
    world.run(until=world.now + 500.0)
    monitoring.stop()
    count = len(monitoring.samples)
    world.run(until=world.now + 500.0)
    assert len(monitoring.samples) == count
