"""Tests for the workload generators."""

import pytest

from repro.app.workloads import WorkloadResult, bursty, constant, phased
from repro.ftm import Client, deploy_ftm_pair
from repro.kernel import World


@pytest.fixture
def setup():
    world = World(seed=70)
    world.add_nodes(["alpha", "beta", "client"])

    def do():
        pair = yield from deploy_ftm_pair(world, "pbr", ["alpha", "beta"])
        return pair

    pair = world.run_process(do(), name="deploy")
    client = Client(world, world.cluster.node("client"), "c1", pair.node_names())
    return world, pair, client


def test_constant_workload(setup):
    world, _pair, client = setup
    result = world.run_process(
        constant(world, client, count=10, period_ms=25.0), name="load"
    )
    assert result.sent == result.ok == 10
    assert result.all_ok
    assert result.replies[-1].value == 10
    assert result.mean_latency_ms > 0
    assert result.max_latency_ms >= result.mean_latency_ms


def test_bursty_workload(setup):
    world, _pair, client = setup
    started = world.now
    result = world.run_process(
        bursty(world, client, bursts=3, burst_size=4, gap_ms=300.0), name="load"
    )
    assert result.sent == 12
    assert result.all_ok
    assert world.now - started >= 3 * 300.0  # the gaps actually elapsed


def test_phased_workload(setup):
    world, _pair, client = setup
    result = world.run_process(
        phased(world, client, [(5, 10.0), (5, 100.0)]), name="load"
    )
    assert result.sent == 10
    assert result.replies[-1].value == 10


def test_custom_payload_fn(setup):
    world, _pair, client = setup
    result = world.run_process(
        constant(
            world, client, count=3, period_ms=5.0,
            payload_fn=lambda i: ("add", i * 10),
        ),
        name="load",
    )
    assert [r.value for r in result.replies] == [0, 10, 30]


def test_empty_workload_result():
    result = WorkloadResult()
    assert not result.all_ok
    assert result.mean_latency_ms == 0.0
    assert result.max_latency_ms == 0.0
