"""Tests for the field-developed amortized-checkpoint PBR variant."""

import pytest

from repro.core import AdaptationEngine
from repro.ftm import Client, deploy_ftm_pair
from repro.ftm.extensions import (
    AMORTIZED_PBR,
    amortized_pbr_assembly,
    register_amortized_pbr,
)
from repro.kernel import Timeout, World


@pytest.fixture
def setup():
    world = World(seed=120)
    world.add_nodes(["alpha", "beta", "client"])

    def do():
        pair = yield from deploy_ftm_pair(world, "pbr", ["alpha", "beta"])
        return pair

    pair = world.run_process(do(), name="deploy")
    engine = AdaptationEngine(world, pair)
    register_amortized_pbr(engine.repository, period=4)
    client = Client(world, world.cluster.node("client"), "c1", pair.node_names())
    return world, pair, engine, client


def test_assembly_validates():
    spec = amortized_pbr_assembly(role="master", peer="beta")
    assert spec.validate() == []
    assert spec.component("syncAfter").impl_class.__name__ == "AmortizedPbrSyncAfter"


def test_online_transition_to_field_ftm(setup):
    world, pair, engine, client = setup

    def scenario():
        yield from client.request(("add", 1))
        report = yield from engine.transition(AMORTIZED_PBR)
        yield from client.request(("add", 1))
        return report

    report = world.run_process(scenario(), name="scenario")
    assert report.success
    assert report.component_count == 1  # only the new brick shipped
    assert pair.ftm == AMORTIZED_PBR


def test_checkpoints_are_amortized(setup):
    world, pair, engine, client = setup

    def scenario():
        yield from engine.transition(AMORTIZED_PBR)
        for _ in range(8):
            yield from client.request(("add", 1))
        yield Timeout(100.0)

    world.run_process(scenario(), name="scenario")
    # 8 requests, period 4 -> exactly 2 checkpoints
    checkpoints = world.trace.select(
        "ftm", "checkpoint_sent", node="alpha",
    )
    assert len(checkpoints) == 2
    # but every reply was replicated for at-most-once
    log = pair.replica_on("beta").composite.component("replyLog").implementation
    assert log.entries() == 8


def test_failover_preserves_at_most_once_despite_stale_state(setup):
    world, pair, engine, client = setup

    def scenario():
        yield from engine.transition(AMORTIZED_PBR)
        for _ in range(5):  # one checkpoint (after request 4), one reply-only
            yield from client.request(("add", 10))
        yield Timeout(100.0)
        world.cluster.node("alpha").crash()
        # a retransmission of request 5 must be replayed, not recomputed
        from repro.ftm.messages import ClientRequest

        mailbox = world.network.bind("client", "probe")
        yield Timeout(300.0)  # promotion window
        world.network.send(
            "client", "beta", "requests",
            ClientRequest(5, "c1", ("add", 10), "client", "probe"), size=128,
        )
        message = yield mailbox.get(timeout=2_000.0)
        return message.payload

    reply = world.run_process(scenario(), name="scenario")
    assert reply.replayed
    assert reply.value == 50
    # state is stale at 40 (last checkpoint) but no double execution
    backup = pair.replica_on("beta").composite.component("server").implementation
    assert backup.application.total == 40


def test_uses_less_bandwidth_than_plain_pbr(setup):
    world, pair, engine, client = setup
    baseline_world = World(seed=121)
    baseline_world.add_nodes(["alpha", "beta", "client"])

    def baseline():
        baseline_pair = yield from deploy_ftm_pair(
            baseline_world, "pbr", ["alpha", "beta"]
        )
        baseline_client = Client(
            baseline_world, baseline_world.cluster.node("client"), "c1",
            baseline_pair.node_names(),
        )
        for _ in range(12):
            yield from baseline_client.request(("add", 1))
        yield Timeout(100.0)

    baseline_world.run_process(baseline(), name="baseline")
    baseline_bytes = baseline_world.cluster.node("alpha").bytes_sent

    def amortized():
        yield from engine.transition(AMORTIZED_PBR)
        start = world.cluster.node("alpha").bytes_sent
        for _ in range(12):
            yield from client.request(("add", 1))
        yield Timeout(100.0)
        return world.cluster.node("alpha").bytes_sent - start

    amortized_bytes = world.run_process(amortized(), name="amortized")
    assert amortized_bytes < baseline_bytes * 0.6


def test_period_is_tunable_online(setup):
    world, pair, engine, client = setup
    from repro.script import ScriptInterpreter, parse

    def scenario():
        yield from engine.transition(AMORTIZED_PBR)
        # tune the trade-off with a one-statement script
        for replica in pair.replicas:
            interpreter = ScriptInterpreter(replica.runtime)
            yield from interpreter.execute(
                parse('transition "tune" { set ftm/syncAfter.period = 2; }'), {}
            )
        for _ in range(4):
            yield from client.request(("add", 1))
        yield Timeout(100.0)

    world.run_process(scenario(), name="scenario")
    checkpoints = world.trace.select("ftm", "checkpoint_sent", node="alpha")
    assert len(checkpoints) == 2  # period 2 over 4 requests
