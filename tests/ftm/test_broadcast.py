"""Tests for atomic broadcast and N-replica active replication."""

import pytest

from repro.ftm.broadcast import AtomicBroadcast, ReplicatedStateMachine
from repro.kernel import World

MEMBERS = ["n1", "n2", "n3"]


def make_world(seed=60, members=MEMBERS):
    world = World(seed=seed)
    world.add_nodes(members + ["client"])
    return world


def collect(world, broadcast_layer):
    delivered = {member: [] for member in broadcast_layer.members}
    for member in broadcast_layer.members:
        broadcast_layer.subscribe(
            member, lambda d, m=member: delivered[m].append(d)
        )
    return delivered


def test_group_needs_two_members():
    world = make_world()
    with pytest.raises(ValueError):
        AtomicBroadcast(world, ["n1"])


def test_total_order_across_members():
    world = make_world()
    ab = AtomicBroadcast(world, MEMBERS)
    delivered = collect(world, ab)
    ab.start()

    # all three members broadcast concurrently
    for index in range(9):
        sender = MEMBERS[index % 3]
        world.sim.schedule(float(index), ab.broadcast, sender, f"m{index}")
    world.run(until=2_000.0)

    sequences = {m: [d.sequence for d in delivered[m]] for m in MEMBERS}
    payloads = {m: [d.payload for d in delivered[m]] for m in MEMBERS}
    assert sequences["n1"] == list(range(9))
    assert payloads["n1"] == payloads["n2"] == payloads["n3"]


def test_gap_recovery_via_nack():
    world = make_world()
    ab = AtomicBroadcast(world, MEMBERS, nack_timeout=80.0)
    delivered = collect(world, ab)
    ab.start()

    # drop exactly one delivery to n3
    dropped = {"count": 0}

    def drop_one(message):
        if (
            message.port == "ab-deliver"
            and message.destination == "n3"
            and dropped["count"] == 0
        ):
            dropped["count"] += 1
            return None
        return message

    world.network.add_delivery_filter(drop_one)
    for index in range(5):
        world.sim.schedule(float(index * 10), ab.broadcast, "n1", index)
    world.run(until=3_000.0)

    assert dropped["count"] == 1
    assert [d.payload for d in delivered["n3"]] == [0, 1, 2, 3, 4]
    assert ab.retransmissions >= 1


def test_sequencer_failover():
    world = make_world()
    ab = AtomicBroadcast(world, MEMBERS)
    delivered = collect(world, ab)
    ab.start()

    for index in range(3):
        world.sim.schedule(float(index * 10), ab.broadcast, "n2", f"pre-{index}")
    world.run(until=500.0)
    assert ab.sequencer == "n1"

    world.cluster.node("n1").crash()
    assert ab.sequencer == "n2"

    for index in range(3):
        world.sim.schedule(world.now + index * 10, ab.broadcast, "n3", f"post-{index}")
    world.run(until=world.now + 2_000.0)

    # survivors agree on the whole history, numbering continued gap-free
    assert [d.payload for d in delivered["n2"]] == [
        "pre-0", "pre-1", "pre-2", "post-0", "post-1", "post-2",
    ]
    assert [d.payload for d in delivered["n3"]] == [d.payload for d in delivered["n2"]]
    assert [d.sequence for d in delivered["n2"]] == list(range(6))


def test_replicated_state_machine_consistency():
    world = make_world()
    rsm = ReplicatedStateMachine(world, MEMBERS, app="counter")
    rsm.start()
    for index in range(12):
        sender = MEMBERS[index % 3]
        world.sim.schedule(float(index * 5), rsm.submit, sender, ("add", index))
    world.run(until=3_000.0)
    assert rsm.consistent()
    states = rsm.states()
    assert states["n1"]["total"] == sum(range(12))


def test_replicated_state_machine_survives_member_crash():
    world = make_world()
    rsm = ReplicatedStateMachine(world, MEMBERS, app="counter")
    rsm.start()
    for index in range(4):
        world.sim.schedule(float(index * 10), rsm.submit, "n1", ("add", 1))
    world.run(until=500.0)
    world.cluster.node("n3").crash()
    for index in range(4):
        world.sim.schedule(world.now + index * 10, rsm.submit, "n2", ("add", 1))
    world.run(until=world.now + 2_000.0)
    assert rsm.consistent()
    assert rsm.states()["n1"]["total"] == 8
