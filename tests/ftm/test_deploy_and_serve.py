"""FTM pairs: deployment, request serving, at-most-once, all six FTMs."""

import pytest

from repro.ftm import FTM_NAMES, Client, deploy_ftm_pair, ftm_assembly
from repro.ftm import variable_feature_distance
from repro.kernel import World


def make_world(seed=10):
    world = World(seed=seed)
    world.add_nodes(["alpha", "beta", "client"])
    return world


def deploy(world, ftm, **kwargs):
    def do():
        pair = yield from deploy_ftm_pair(world, ftm, ["alpha", "beta"], **kwargs)
        return pair

    return world.run_process(do(), name="deploy")


def run_requests(world, pair, payloads, client_name="c1", **client_kwargs):
    client = Client(
        world, world.cluster.node("client"), client_name, pair.node_names(),
        **client_kwargs,
    )

    def workload():
        replies = yield from client.run_workload(payloads)
        return replies

    replies = world.run_process(workload(), name="workload")
    return client, replies


# -- deployment ----------------------------------------------------------------


def test_deploy_pbr_pair_roles():
    world = make_world()
    pair = deploy(world, "pbr")
    assert pair.master.node.name == "alpha"
    assert pair.slave.node.name == "beta"
    assert pair.logged_configuration()["ftm"] == "pbr"


def test_parallel_deploy_time_matches_single_replica():
    world = make_world()
    deploy(world, "pbr")
    # both replicas deploy concurrently: wall-clock ~ one replica (~3.8 s)
    assert 3300 <= world.now <= 4300


@pytest.mark.parametrize("ftm", FTM_NAMES)
def test_all_ftms_deploy_and_serve(ftm):
    world = make_world()
    pair = deploy(world, ftm, assertion="counter-range")
    _client, replies = run_requests(world, pair, [("add", 2), ("add", 3), ("get",)])
    assert [r.value for r in replies] == [2, 5, 5]
    assert all(r.ok for r in replies)


def test_assembly_validates():
    for ftm in FTM_NAMES:
        spec = ftm_assembly(ftm, role="master", peer="beta")
        assert spec.validate() == []


def test_variable_feature_distance_matrix():
    assert variable_feature_distance("pbr", "pbr") == 0
    assert variable_feature_distance("lfr", "lfr+tr") == 1
    assert variable_feature_distance("pbr", "lfr") == 2
    assert variable_feature_distance("pbr", "lfr+tr") == 3
    assert variable_feature_distance("pbr", "a+pbr") == 1
    assert variable_feature_distance("a+pbr", "a+lfr") == 2
    # symmetry
    for a in FTM_NAMES:
        for b in FTM_NAMES:
            assert variable_feature_distance(a, b) == variable_feature_distance(b, a)


def test_unknown_ftm_rejected():
    from repro.ftm import UnknownFTM, check_ftm_name

    with pytest.raises(UnknownFTM):
        check_ftm_name("quadruplex")


# -- replication behaviour -----------------------------------------------------------


def settle(world, ms=50.0):
    """Let in-flight messages (e.g. the last checkpoint) drain."""
    world.run(until=world.now + ms)


def test_pbr_backup_receives_checkpoints():
    world = make_world()
    pair = deploy(world, "pbr")
    run_requests(world, pair, [("add", 10), ("add", 5)])
    settle(world)
    assert world.trace.count("ftm", "checkpoint_sent") == 2
    assert world.trace.count("ftm", "checkpoint_applied") == 2
    backup_server = pair.slave.composite.component("server").implementation
    assert backup_server.application.total == 15


def test_lfr_follower_computes_every_request():
    world = make_world()
    pair = deploy(world, "lfr")
    run_requests(world, pair, [("add", 10), ("add", 5)])
    settle(world)
    follower_server = pair.slave.composite.component("server").implementation
    assert follower_server.application.total == 15
    assert follower_server.application.processed == 2  # active replication


def test_pbr_uses_more_bandwidth_than_lfr():
    def bytes_for(ftm):
        world = make_world()
        pair = deploy(world, ftm)
        run_requests(world, pair, [("add", i) for i in range(10)])
        settle(world)
        return world.cluster.node("alpha").bytes_sent

    assert bytes_for("pbr") > bytes_for("lfr") * 1.5


def test_lfr_burns_more_cpu_than_pbr():
    def backup_busy(ftm):
        world = make_world()
        pair = deploy(world, ftm)
        run_requests(world, pair, [("add", i) for i in range(10)])
        settle(world)
        return world.cluster.node("beta").busy_ms

    assert backup_busy("lfr") > backup_busy("pbr") + 30


def test_at_most_once_across_retransmission():
    world = make_world()
    pair = deploy(world, "pbr")
    client, replies = run_requests(world, pair, [("add", 5)])

    # replay the same request id manually: must be served from the log
    from repro.ftm.messages import ClientRequest

    def replay():
        mailbox = world.network.bind("client", "probe")
        world.network.send(
            "client",
            "alpha",
            "requests",
            ClientRequest(1, "c1", ("add", 5), "client", "probe"),
            size=128,
        )
        message = yield mailbox.get()
        return message.payload

    reply = world.run_process(replay(), name="replay")
    assert reply.replayed
    assert reply.value == 5
    master_server = pair.master.composite.component("server").implementation
    assert master_server.application.total == 5  # not recomputed


def test_slave_answers_not_master():
    world = make_world()
    pair = deploy(world, "pbr")
    # address the slave directly: client must fail over to the master
    client = Client(
        world, world.cluster.node("client"), "c2", ["beta", "alpha"]
    )

    def do():
        reply = yield from client.request(("add", 4))
        return reply

    reply = world.run_process(do(), name="misdirected")
    assert reply.ok
    assert reply.value == 4
    assert reply.served_by == "alpha"
