"""Tests for the component-level N-replica active-replication group."""

import pytest

from repro.ftm import Client
from repro.ftm.group import FTMGroup, group_assembly
from repro.kernel import Timeout, World

MEMBERS = ["g1", "g2", "g3"]


def make_group(seed=130, members=MEMBERS):
    world = World(seed=seed)
    world.add_nodes(list(members) + ["client"])
    group = FTMGroup(world, list(members))

    def do():
        yield from group.deploy()
        return group

    world.run_process(do(), name="deploy")
    client = Client(
        world, world.cluster.node("client"), "c1", group.node_names(),
        timeout=2_000.0, max_attempts=12,
    )
    return world, group, client


def test_assembly_validates():
    spec = group_assembly(("a", "b", "c"))
    assert spec.validate() == []
    with pytest.raises(ValueError):
        group_assembly(("solo",))


def test_group_serves_and_replicates_everywhere():
    world, group, client = make_group()
    assert group.leader() == "g1"

    def workload():
        replies = []
        for _ in range(4):
            reply = yield from client.request(("add", 5))
            replies.append(reply)
        yield Timeout(300.0)
        return replies

    replies = world.run_process(workload(), name="workload")
    assert [r.value for r in replies] == [5, 10, 15, 20]
    states = group.application_states()
    assert set(states) == set(MEMBERS)
    assert all(state["total"] == 20 for state in states.values())


def test_leader_crash_promotes_by_rank():
    world, group, client = make_group()

    def scenario():
        yield from client.request(("add", 1))
        world.cluster.node("g1").crash()
        reply = yield from client.request(("add", 1))
        return reply

    reply = world.run_process(scenario(), name="scenario")
    assert reply.ok and reply.value == 2
    assert group.leader() == "g2"
    assert world.trace.count("ftm", "promoted") == 1


def test_group_survives_two_crashes():
    world, group, client = make_group()

    def scenario():
        yield from client.request(("add", 1))
        world.cluster.node("g1").crash()
        yield from client.request(("add", 1))
        yield Timeout(500.0)
        world.cluster.node("g2").crash()
        reply = yield from client.request(("add", 1))
        return reply

    reply = world.run_process(scenario(), name="scenario")
    assert reply.ok and reply.value == 3
    assert group.leader() == "g3"


def test_at_most_once_across_group_failover():
    world, group, client = make_group()

    def scenario():
        reply1 = yield from client.request(("add", 7))
        yield Timeout(200.0)  # forward + notify land on the followers
        world.cluster.node("g1").crash()
        yield Timeout(300.0)  # promotion window
        # retransmit the same request id to the new leader
        from repro.ftm.messages import ClientRequest

        mailbox = world.network.bind("client", "probe")
        world.network.send(
            "client", "g2", "requests",
            ClientRequest(1, "c1", ("add", 7), "client", "probe"), size=128,
        )
        message = yield mailbox.get(timeout=3_000.0)
        return reply1, message.payload

    reply1, replay = world.run_process(scenario(), name="scenario")
    assert replay.replayed
    assert replay.value == reply1.value == 7
    # the new leader's state reflects exactly one execution
    states = group.application_states()
    assert states["g2"]["total"] == 7


def test_followers_stay_mutually_consistent_after_failover():
    world, group, client = make_group(seed=131)

    def scenario():
        for _ in range(3):
            yield from client.request(("add", 2))
        world.cluster.node("g1").crash()
        for _ in range(3):
            yield from client.request(("add", 2))
        yield Timeout(300.0)

    world.run_process(scenario(), name="scenario")
    states = group.application_states()
    assert set(states) == {"g2", "g3"}
    assert states["g2"] == states["g3"]
    assert states["g2"]["total"] == 12
