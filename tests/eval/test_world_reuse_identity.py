"""Arena-reused worlds must produce byte-identical stores everywhere.

Every eval builder leases its world through the process arena (build
once, snapshot, reset, rerun).  These tests pin the product-level
contract on each campaign family: the store produced with reuse on —
serial and co-scheduled, first lease (miss) and re-lease (hit) — is
byte-for-byte the store produced by fresh per-mission construction.
Because every mission outcome embeds a ``trace_digest`` (or full trace
counts), byte-identity certifies event-order identity, not just equal
summaries.
"""

import json

import pytest

from repro import exp
from repro.eval import campaign, fleet_campaign, gray, transition_matrix
from repro.kernel import (
    clear_world_arena,
    set_world_reuse,
    world_arena_stats,
)


@pytest.fixture(autouse=True)
def _isolated_arena():
    set_world_reuse(True)
    clear_world_arena()
    yield
    set_world_reuse(True)
    clear_world_arena()


def _store_json(spec, **kwargs):
    result = exp.run(spec, **kwargs)
    return json.dumps(result.results, sort_keys=True)


def _assert_reuse_identical(make_spec, coschedule=4):
    set_world_reuse(False)
    clear_world_arena()
    fresh = _store_json(make_spec(), jobs=1)

    set_world_reuse(True)
    clear_world_arena()
    reuse_serial = _store_json(make_spec(), jobs=1)
    stats = world_arena_stats()
    assert stats["hits"] > 0, "the arena never re-leased a world"
    reuse_again = _store_json(make_spec(), jobs=1)  # every lease a hit
    reuse_cosched = _store_json(make_spec(), jobs=1, coschedule=coschedule,
                                coschedule_min_units=0)

    assert reuse_serial == fresh
    assert reuse_again == fresh
    assert reuse_cosched == fresh


def test_campaign_reuse_byte_identical():
    _assert_reuse_identical(
        lambda: campaign.sharded_spec(
            missions=8, base_seed=4100, requests=6, cell_size=4
        )
    )


def test_gray_matrix_reuse_byte_identical():
    _assert_reuse_identical(lambda: gray.spec(missions=4, base_seed=4200))


def test_transition_matrix_reuse_byte_identical():
    _assert_reuse_identical(
        lambda: transition_matrix.spec(runs=1, base_seed=4300, requests=6)
    )


def test_fleet_campaign_reuse_byte_identical():
    _assert_reuse_identical(
        lambda: fleet_campaign.spec(
            missions=2, base_seed=4400, hosts=6, apps=2,
            placements=("round-robin",), churn_rates=(0, 2),
            duration_ms=3_000.0,
        ),
        coschedule=2,
    )


def test_campaign_reuse_identical_across_backends():
    """Serial, co-scheduled and the persistent local pool all drain the
    same lease path; their stores must match the fresh serial store."""

    def make_spec():
        return campaign.sharded_spec(
            missions=8, base_seed=4500, requests=6, cell_size=4
        )

    set_world_reuse(False)
    fresh = _store_json(make_spec(), jobs=1)
    set_world_reuse(True)
    clear_world_arena()
    try:
        local = _store_json(make_spec(), jobs=2, backend="local", batch=2)
        local_cosched = _store_json(
            make_spec(), jobs=2, backend="local", coschedule=4,
            coschedule_min_units=0,
        )
    finally:
        exp.shutdown_local_pool()
    assert local == fresh
    assert local_cosched == fresh
