"""Fleet campaign: determinism across repeats and executor backends.

The churn-determinism contract: a fleet mission — topology generation,
placement, open-loop arrivals, churn outages, shared-R transitions — is
fully determined by its seed.  Same seed ⇒ identical outcome *and*
identical event trace (compared via the mission's ``trace_digest``),
and the store bytes are identical however the missions execute: serial,
co-scheduled, or over the persistent local pool.
"""

import hashlib
import json

from repro import exp
from repro.eval import fleet_campaign


def _dump(result):
    return json.dumps(result.results, sort_keys=True)


def _store_bytes(root):
    """SHA-256 of every cell file (manifests excluded: they record
    execution metadata like jobs/backend/elapsed by design)."""
    digests = {}
    for path in sorted(root.rglob("*.json")):
        if path.name == "manifest.json":
            continue
        digests[str(path.relative_to(root))] = hashlib.sha256(
            path.read_bytes()
        ).hexdigest()
    return digests


def _small_spec():
    return fleet_campaign.spec(
        missions=1, base_seed=9000, hosts=8, apps=2,
        placements=("round-robin", "greedy"), churn_rates=(0, 2),
        duration_ms=4_000.0,
    )


def test_same_seed_same_mission_including_trace():
    first = fleet_campaign.run_fleet_mission(9000, hosts=8, apps=2, churn=2,
                                             duration_ms=4_000.0)
    again = fleet_campaign.run_fleet_mission(9000, hosts=8, apps=2, churn=2,
                                             duration_ms=4_000.0)
    other = fleet_campaign.run_fleet_mission(9101, hosts=8, apps=2, churn=2,
                                             duration_ms=4_000.0)
    assert first == again
    assert first.trace_digest == again.trace_digest
    assert first.trace_digest != other.trace_digest
    assert first.sent > 0
    assert first.node_downs > 0


def test_campaign_store_is_byte_identical_across_repeat_runs(tmp_path):
    spec = _small_spec()
    exp.run(spec, jobs=1, backend="serial",
            store=exp.ResultStore(tmp_path / "one"))
    exp.run(spec, jobs=1, backend="serial",
            store=exp.ResultStore(tmp_path / "two"), fresh=True)
    first = _store_bytes(tmp_path / "one")
    assert first == _store_bytes(tmp_path / "two")
    assert first  # the cells really were written


def test_campaign_is_byte_identical_across_backends(tmp_path):
    spec = _small_spec()
    serial = exp.run(spec, jobs=1, backend="serial",
                     store=exp.ResultStore(tmp_path / "serial"))
    local = exp.run(spec, jobs=2, backend="local",
                    store=exp.ResultStore(tmp_path / "local"))
    cosched = exp.run(spec, jobs=1, backend="serial", coschedule=3,
                      coschedule_min_units=0,
                      store=exp.ResultStore(tmp_path / "cosched"))
    try:
        assert _dump(serial) == _dump(local) == _dump(cosched)
        serial_bytes = _store_bytes(tmp_path / "serial")
        assert serial_bytes == _store_bytes(tmp_path / "local")
        assert serial_bytes == _store_bytes(tmp_path / "cosched")
        # the digests inside the cells certify event-order identity too
        for cell in serial.results.values():
            assert cell["trace_digests"]
    finally:
        exp.shutdown_local_pool()


def test_campaign_aggregate_shape_and_checks():
    spec = _small_spec()
    result = exp.run(spec, jobs=1, backend="serial")
    data = fleet_campaign.from_results(result.results)
    assert data["missions"] == len(spec.trials)
    assert fleet_campaign.shape_checks(data) == []
    rendered = fleet_campaign.render(data)
    assert "Fleet campaign" in rendered
    assert "greedy-churn2" in rendered


def test_campaign_contains_a_contention_transition():
    # the acceptance scenario at campaign scale: at least one cell must
    # show a transition whose cause was another pair's resource use
    spec = _small_spec()
    result = exp.run(spec, jobs=1, backend="serial")
    data = fleet_campaign.from_results(result.results)
    assert data["contention_decisions"] >= 1
    assert data["transitions"] >= 1
