"""Tests for the gray-failure matrix (`repro.eval.gray`)."""

from dataclasses import asdict

import pytest

from repro import exp
from repro.eval import gray


def test_spec_covers_the_full_grid_with_unique_keys_and_seeds():
    spec = gray.spec(missions=2, base_seed=41_000)
    expected = (len(gray.GRAY_FTMS) * len(("cpu", "link", "disk"))
                * len(gray.GRAY_FACTORS))
    assert len(spec.trials) == expected == 12
    keys = [t.key for t in spec.trials]
    assert len(set(keys)) == expected
    for trial in spec.trials:
        assert len(set(trial.seeds)) == 2
        assert trial.params["proactive"] is True


def test_gray_task_rejects_unknown_resource():
    with pytest.raises(ValueError, match="unknown slow resource"):
        gray.gray_task(1, resource="gpu")


def test_mission_is_deterministic_for_a_seed():
    kwargs = dict(ftm="pbr", resource="disk", factor=8.0, requests=60)
    first = gray.run_gray_mission(41_000, **kwargs)
    second = gray.run_gray_mission(41_000, **kwargs)
    assert asdict(first) == asdict(second)
    assert first.trace_digest == second.trace_digest


def test_limping_primary_is_slow_not_dead():
    """The full-stack discrimination claim on the flagship scenario."""
    outcome = gray.run_gray_mission(41_000, ftm="pbr", resource="disk",
                                    factor=8.0)
    assert outcome.peer_suspected == 0      # never tripped the crash path
    assert outcome.detected                 # but the latency probe saw it
    assert outcome.detection_latency_ms is not None
    assert outcome.transitioned             # and the stack escaped...
    assert outcome.final_ftm == "lfr"       # ...to the limp-tolerant FTM
    assert outcome.ok == outcome.sent       # masking never broke
    assert outcome.masked


def test_lfr_rides_out_a_disk_limp_invisibly():
    """LFR never touches the disk: the limp is invisible *and* harmless."""
    outcome = gray.run_gray_mission(41_000, ftm="lfr", resource="disk",
                                    factor=8.0, requests=60)
    assert not outcome.detected
    assert outcome.peer_suspected == 0
    assert outcome.ok == outcome.sent
    assert outcome.masked


def test_proactive_beats_reactive_on_the_limping_primary():
    scenario = dict(ftm="pbr", resource="disk", factor=8.0, slo_ms=10.0)
    reactive = gray.run_gray_mission(41_000, proactive=False, **scenario)
    proactive = gray.run_gray_mission(41_000, proactive=True, **scenario)
    assert not reactive.detected  # no probe, no detection — only crashes
    assert proactive.detected and proactive.transitioned
    assert proactive.unavailability < reactive.unavailability


def test_small_matrix_is_byte_identical_serial_vs_coscheduled():
    grid = dict(ftms=("pbr",), resources=("disk",), factors=(8.0,),
                requests=60)
    serial = exp.run(gray.spec(missions=1, **grid), jobs=1,
                     backend="serial")
    cosched = exp.run(gray.spec(missions=1, **grid), jobs=1,
                      backend="serial", coschedule=4, coschedule_min_units=0)
    assert serial.results == cosched.results


def test_from_results_and_render_report_the_headlines():
    grid = dict(ftms=("pbr",), resources=("disk",), factors=(8.0,))
    result = exp.run(gray.spec(missions=2, **grid), jobs=1,
                     backend="serial")
    data = gray.from_results(result.results)
    assert gray.shape_checks(data) == []
    cell = data["cells"]["pbr|disk|x8"]
    assert cell["detected"] == 2
    assert cell["transitioned"] == 2
    assert cell["mean_detection_latency_ms"] is not None
    assert cell["final_ftms"] == ["lfr"]
    rendered = gray.render(data)
    assert "Gray-failure matrix" in rendered
    assert "pbr|disk|x8" in rendered
    assert "0 crash suspicions (must be 0)" in rendered


def _clean_cell(**overrides):
    cell = {
        "ftm": "pbr", "resource": "disk", "factor": 8.0,
        "missions": 2, "sent": 400, "ok": 400, "errors": 0,
        "detected": 2, "detection_latency_sum_ms": 500.0,
        "detection_latency_count": 2, "transitioned": 2,
        "pending_proposals": 0, "peer_suspected": 0,
        "post_requests": 360, "slo_misses": 0, "masked": 2,
        "final_ftms": ["lfr"], "trace_digests": ["a", "b"],
    }
    cell.update(overrides)
    return cell


def test_shape_checks_pass_on_clean_cells():
    data = gray.from_results({"pbr|disk|x8": _clean_cell()})
    assert gray.shape_checks(data) == []


def test_shape_checks_flag_crash_suspicion():
    data = gray.from_results({"pbr|disk|x8": _clean_cell(peer_suspected=1)})
    assert any("slow must not look dead" in p
               for p in gray.shape_checks(data))


def test_shape_checks_flag_lost_requests_and_missed_limplock():
    data = gray.from_results({
        "pbr|disk|x8": _clean_cell(ok=399, detected=1, transitioned=1),
    })
    problems = gray.shape_checks(data)
    assert any("lost requests" in p for p in problems)
    assert any("undetected" in p for p in problems)
    assert any("proactive" in p for p in problems)


def test_shape_checks_exempt_lfr_disk_and_mild_limps():
    data = gray.from_results({
        "lfr|disk|x8": _clean_cell(ftm="lfr", detected=0, transitioned=0,
                                   detection_latency_count=0,
                                   detection_latency_sum_ms=0.0,
                                   final_ftms=["lfr"]),
        "pbr|disk|x4": _clean_cell(factor=4.0, detected=0, transitioned=0,
                                   detection_latency_count=0,
                                   detection_latency_sum_ms=0.0,
                                   final_ftms=["pbr"]),
    })
    assert gray.shape_checks(data) == []


def test_shape_checks_flag_empty_matrix():
    assert gray.shape_checks(gray.from_results({})) == [
        "gray matrix ran no missions"
    ]
