"""Unit tests for the evaluation harness itself."""


from repro.eval import figure2, figure4, figure5, figure8, table1, table2
from repro.eval.format import check, render_table
from repro.eval.sloc import class_sloc, count_sloc


# -- formatting --------------------------------------------------------------


def test_render_table_alignment():
    out = render_table(["a", "bee"], [["x", 1], ["longer", 2]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert lines[1] == "="
    assert "a      | bee" in lines[2]
    assert "longer | 2" in out


def test_render_table_cell_types():
    out = render_table(["v"], [[True], [False], [1.25], [None], ["s"]])
    assert "yes" in out and "no" in out and "1.2" in out


def test_check_marks():
    assert check(True) == "x"
    assert check(False) == ""


# -- SLOC counting -------------------------------------------------------------


def test_count_sloc_strips_comments_blanks_docstrings():
    source = '''
def f():
    """Docstring
    spanning lines."""
    # a comment
    x = 1

    return x
'''
    assert count_sloc(source) == 3  # def, assignment, return


def test_count_sloc_handles_syntax_errors_gracefully():
    assert count_sloc("not ( valid python [") >= 1


def test_class_sloc_positive_for_real_classes():
    from repro.patterns import PBR

    assert class_sloc(PBR) > 10


# -- table/figure data structures --------------------------------------------------


def test_table1_has_all_four_columns():
    data = table1.generate()
    assert set(data) == {"PBR", "LFR", "TR", "A&Duplex"}
    for chars in data.values():
        assert {"fault_models", "bandwidth", "cpu"} <= set(chars)


def test_table1_fidelity_structure():
    result = table1.fidelity(table1.generate())
    assert result["total"] == 32
    assert result["matches"] + len(result["mismatches"]) == result["total"]


def test_table2_scheme_covers_all_roles():
    data = table2.generate()
    roles = set(data["scheme"])
    assert {"PBR (Primary)", "PBR (Backup)", "LFR (Leader)", "LFR (Follower)"} <= roles


def test_figure2_realises_every_edge():
    data = figure2.generate()
    assert figure2.coverage(data) == []


def test_figure4_proxy_is_positive_everywhere():
    data = figure4.generate()
    assert all(v > 0 for v in data["proxy_sloc"].values())
    assert set(data["paper_days"]) == set(data["proxy_sloc"])


def test_figure5_render_contains_bars():
    data = figure5.generate()
    out = figure5.render(data)
    assert "#" in out


def test_figure8_edge_fields():
    data = figure8.generate()
    for edge in data["edges"]:
        assert edge["kind"] in ("mandatory", "possible", "intra")
        assert edge["detection"] in ("probe", "manager")
        assert edge["nature"] in ("reactive", "proactive")
