"""The transition-survival matrix: cells, grid plumbing, shape checks."""

from repro import exp
from repro.eval import transition_matrix


def test_fault_free_cell_survives_cleanly():
    cell = transition_matrix.run_cell(7001, "pbr", "lfr", "none")
    assert cell.status == "S"
    assert cell.outcome == "success"
    assert cell.all_ok and cell.exactly_once
    assert cell.converged
    assert cell.final_ftm == "lfr"
    assert cell.faults_injected == 0


def test_fetch_corrupt_cell_detects_and_survives():
    cell = transition_matrix.run_cell(7002, "pbr", "lfr", "fetch/corrupt")
    assert "!" not in cell.status
    assert cell.faults_injected > 0
    assert cell.corrupt_detected > 0  # checksum caught the tampered chunk
    assert cell.converged


def test_script_crash_cell_rolls_back_and_recovers():
    cell = transition_matrix.run_cell(7003, "pbr", "lfr", "script/crash")
    assert cell.status == "R"
    assert cell.rolled_back
    assert cell.converged  # quarantine/recovery brought the replica back
    assert cell.replicas_alive == 2


def test_smoke_grid_runs_green_end_to_end():
    spec = transition_matrix.spec(runs=1, base_seed=7100, smoke=True)
    result = exp.run(spec, jobs=1, store=None)
    data = transition_matrix.from_results(result.results)
    assert data["transitions"] == ["pbr->lfr"]
    assert data["faults"] == [f for f in transition_matrix.FAULT_LABELS
                              if f in transition_matrix.SMOKE_LABELS]
    assert transition_matrix.shape_checks(data) == []
    rendered = transition_matrix.render(data)
    assert "Transition-survival matrix" in rendered
    assert "pbr->lfr" in rendered
    assert "!" not in rendered.split("=requests lost")[0].split("S=survived")[0]


def test_full_spec_covers_every_cell():
    spec = transition_matrix.spec(runs=2, base_seed=7000)
    expected = len(transition_matrix.TRANSITIONS) * len(
        transition_matrix.FAULT_LABELS
    )
    assert len(spec.trials) == expected
    for trial in spec.trials:
        assert len(trial.seeds) == 2
        assert len(set(trial.seeds)) == 2
    # seeds differ across cells so runs aren't accidentally correlated
    assert len({t.seeds for t in spec.trials}) == expected


def test_hash_label_is_deterministic_across_calls():
    assert (transition_matrix.hash_label("pbr->lfr|none")
            == transition_matrix.hash_label("pbr->lfr|none"))
    assert (transition_matrix.hash_label("pbr->lfr|none")
            != transition_matrix.hash_label("pbr->lfr|fetch/crash"))


def test_shape_checks_flag_lost_requests():
    good = transition_matrix.run_cell(7001, "pbr", "lfr", "none")
    from dataclasses import asdict

    raw = asdict(good)
    raw["status"] = "S!"
    raw["all_ok"] = False
    data = transition_matrix.from_results({"pbr->lfr|none": [raw]})
    problems = transition_matrix.shape_checks(data)
    assert any("lost/duplicated" in p for p in problems)
    assert any("not clean" in p for p in problems)
