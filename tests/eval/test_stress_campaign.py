"""Opt-in stress campaigns (``pytest -m stress``) — excluded from tier-1.

These back the statistical claims with enough missions that the Wilson
95% intervals become tight: across a thousand randomised missions with
crashes, transient value faults, and on-line transitions, no request is
ever lost or duplicated and the deployed FTM masks what its fault model
covers.
"""

import pytest

from repro import exp
from repro.eval import campaign, transition_matrix


@pytest.mark.stress
def test_thousand_mission_campaign_is_clean_with_tight_cis():
    spec = campaign.spec(missions=1000, base_seed=5000)
    result = exp.run(spec, jobs=exp.default_jobs(), store=None)
    data = campaign.from_results(result.results)

    assert campaign.shape_checks(data) == []
    assert data["clean_missions"] == data["missions"] == 1000

    low, high = data["exactly_once_ci95"]
    assert data["exactly_once_rate"] == 1.0
    assert high == 1.0
    # 1000/1000 successes: the Wilson lower bound passes 0.996
    assert low > 0.996

    # masking is statistical (crashes can pre-empt a shot) but the CI
    # must sit well above the 0.5 floor the shape check enforces
    m_low, _m_high = data["masking_ci95"]
    assert data["total_injected"] > 500
    assert m_low > 0.5


@pytest.mark.stress
def test_full_matrix_many_seeds_never_loses_requests():
    spec = transition_matrix.spec(runs=10, base_seed=7000)
    result = exp.run(spec, jobs=exp.default_jobs(), store=None)
    data = transition_matrix.from_results(result.results)
    assert transition_matrix.shape_checks(data) == []
