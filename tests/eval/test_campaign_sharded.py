"""Sharded streaming campaign tests.

The 10k-mission recipe in miniature: the mission seed sequence is split
into shard cells, each shard reduces to counts the moment it completes,
and the aggregate (with Wilson CIs) is computed from those streamed
counts alone — so the numbers must agree exactly with the monolithic
campaign over the same missions.
"""

import json

from repro import exp
from repro.eval import campaign

MISSIONS = 6
REQUESTS = 10


def _sharded(cell_size=2, missions=MISSIONS):
    return campaign.sharded_spec(
        missions=missions, base_seed=42, requests=REQUESTS,
        cell_size=cell_size,
    )


def test_sharded_spec_splits_the_same_mission_seeds():
    mono = campaign.spec(missions=MISSIONS, base_seed=42, requests=REQUESTS)
    sharded = _sharded(cell_size=2)
    assert len(sharded.trials) == 3
    mono_seeds = list(mono.trials[0].seeds)
    shard_seeds = [s for t in sharded.trials for s in t.seeds]
    assert shard_seeds == mono_seeds
    assert sharded.reduce is campaign._reduce_shard


def test_sharded_counts_match_the_monolithic_campaign():
    mono = campaign.generate(missions=MISSIONS, base_seed=42,
                             requests=REQUESTS)
    sharded = campaign.generate_sharded(missions=MISSIONS, base_seed=42,
                                        requests=REQUESTS, cell_size=2)
    for key in ("missions", "clean_missions", "exactly_once_missions",
                "total_crashes", "total_injected", "total_masked",
                "total_promotions", "total_reintegrations",
                "masking_rate", "masking_ci95",
                "exactly_once_rate", "exactly_once_ci95"):
        assert sharded[key] == mono[key], key
    assert sharded["shards"] == 3
    assert campaign.shard_shape_checks(sharded) == []


def test_sharded_campaign_is_deterministic_across_jobs_and_cache(tmp_path):
    store = exp.ResultStore(tmp_path)
    serial = exp.run(_sharded(), jobs=1, store=store)
    parallel = exp.run(_sharded(), jobs=4)
    cached = exp.run(_sharded(), jobs=4, store=store)
    assert cached.cached and cached.executed == 0
    dumps = [json.dumps(r.results, sort_keys=True)
             for r in (serial, parallel, cached)]
    assert dumps[0] == dumps[1] == dumps[2]


def test_store_holds_shard_counts_not_mission_dicts(tmp_path):
    # the streaming claim: what lands on disk (and in memory after a
    # shard completes) is the reduced counts, independent of shard size
    store = exp.ResultStore(tmp_path)
    spec = _sharded()
    exp.run(spec, jobs=1, store=store)
    payload = json.loads(
        store.cell_path(spec, spec.trials[0]).read_text(encoding="utf-8")
    )
    values = payload["values"]
    assert set(values) == {
        "missions", "clean", "exactly_once", "injected", "masked",
        "crashes", "promotions", "reintegrations", "dirty_seeds",
    }
    assert values["missions"] == 2


def test_render_sharded_reports_wilson_cis():
    data = campaign.generate_sharded(missions=4, base_seed=42,
                                     requests=REQUESTS, cell_size=2)
    text = campaign.render_sharded(data)
    assert "4 randomised missions in 2 shards" in text
    assert "CI95 [" in text
    assert "exactly-once rate" in text
