"""Wilson score intervals: known values and edge cases."""

import math

import pytest

from repro.eval import format_interval, wilson_interval


def test_known_value_half():
    # 50/100 at 95%: the textbook Wilson interval is about (0.404, 0.596)
    low, high = wilson_interval(50, 100)
    assert math.isclose(low, 0.40383, abs_tol=1e-4)
    assert math.isclose(high, 0.59617, abs_tol=1e-4)


def test_all_successes_stays_informative():
    # the paper's regime: every trial succeeded.  A normal-approximation
    # interval collapses to [1, 1]; Wilson keeps a real lower bound.
    low, high = wilson_interval(100, 100)
    assert high == 1.0
    assert 0.95 < low < 1.0


def test_zero_successes_mirror():
    low, high = wilson_interval(0, 100)
    mirror_low, mirror_high = wilson_interval(100, 100)
    assert low == 0.0
    assert math.isclose(high, 1.0 - mirror_low, abs_tol=1e-12)
    assert mirror_high == 1.0


def test_interval_always_inside_unit_and_contains_estimate():
    for trials in (1, 2, 7, 50, 1000):
        for successes in range(0, trials + 1, max(1, trials // 5)):
            low, high = wilson_interval(successes, trials)
            assert 0.0 <= low <= successes / trials <= high <= 1.0


def test_more_trials_tighten_the_interval():
    widths = []
    for trials in (10, 100, 1000):
        low, high = wilson_interval(trials, trials)
        widths.append(high - low)
    assert widths[0] > widths[1] > widths[2]


def test_zero_trials_is_uninformative():
    assert wilson_interval(0, 0) == (0.0, 1.0)


def test_invalid_inputs_raise():
    with pytest.raises(ValueError):
        wilson_interval(5, 3)
    with pytest.raises(ValueError):
        wilson_interval(-1, 3)
    with pytest.raises(ValueError):
        wilson_interval(0, -1)


def test_format_interval():
    assert format_interval(0.98654, 1.0) == "[0.987, 1.000]"
    assert format_interval(0.0, 0.5, digits=2) == "[0.00, 0.50]"
