"""Unit tests for the DSL lexer and parser."""

import pytest

from repro.script import (
    Add,
    Demote,
    Path,
    Promote,
    Remove,
    ScriptSyntaxError,
    SetProperty,
    Start,
    Stop,
    TokenKind,
    UnwireStmt,
    WireStmt,
    parse,
    render,
    tokenize,
)

FULL_SCRIPT = '''
transition "pbr-to-lfr" {
    # replace the variable features
    stop ftm/syncBefore;
    stop ftm/syncAfter;
    unwire ftm/protocol.before -> ftm/syncBefore.sync;
    unwire ftm/protocol.after -> ftm/syncAfter.sync;
    remove ftm/syncBefore;
    remove ftm/syncAfter;
    add ftm/syncBefore from package;
    add ftm/syncAfter from package;
    wire ftm/protocol.before -> ftm/syncBefore.sync;
    wire ftm/protocol.after -> ftm/syncAfter.sync;
    start ftm/syncBefore;
    start ftm/syncAfter;
    set ftm/proceed.mode = "leader";
    promote front -> ftm/protocol.request;
    demote ftm old_front;
}
'''


# -- lexer -------------------------------------------------------------------


def test_tokenize_basic_stream():
    tokens = tokenize('transition "x" { stop a/b; }')
    kinds = [t.kind for t in tokens]
    assert kinds == [
        TokenKind.IDENT,
        TokenKind.STRING,
        TokenKind.LBRACE,
        TokenKind.IDENT,
        TokenKind.IDENT,
        TokenKind.SLASH,
        TokenKind.IDENT,
        TokenKind.SEMICOLON,
        TokenKind.RBRACE,
        TokenKind.EOF,
    ]


def test_tokenize_arrow_vs_minus():
    tokens = tokenize("a -> b")
    assert [t.kind for t in tokens[:3]] == [
        TokenKind.IDENT,
        TokenKind.ARROW,
        TokenKind.IDENT,
    ]


def test_tokenize_comments_ignored():
    tokens = tokenize("# a comment\nstop")
    assert tokens[0].kind == TokenKind.IDENT
    assert tokens[0].text == "stop"
    assert tokens[0].line == 2


def test_tokenize_string_escapes():
    tokens = tokenize('"a\\"b\\nc"')
    assert tokens[0].text == 'a"b\nc'


def test_tokenize_numbers():
    tokens = tokenize("42 -7 3.25")
    assert [t.text for t in tokens[:3]] == ["42", "-7", "3.25"]


def test_tokenize_unterminated_string():
    with pytest.raises(ScriptSyntaxError, match="unterminated"):
        tokenize('"never closed')


def test_tokenize_bad_character():
    with pytest.raises(ScriptSyntaxError, match="unexpected character"):
        tokenize("stop @")


def test_tokenize_line_column_tracking():
    tokens = tokenize("a\n  b")
    assert (tokens[0].line, tokens[0].column) == (1, 1)
    assert (tokens[1].line, tokens[1].column) == (2, 3)


def test_tokenize_kebab_identifier():
    tokens = tokenize("sync-before")
    assert tokens[0].text == "sync-before"
    assert tokens[1].kind == TokenKind.EOF


# -- parser ---------------------------------------------------------------------


def test_parse_full_script_statement_types():
    script = parse(FULL_SCRIPT)
    assert script.name == "pbr-to-lfr"
    types = [type(s) for s in script.statements]
    assert types == [
        Stop,
        Stop,
        UnwireStmt,
        UnwireStmt,
        Remove,
        Remove,
        Add,
        Add,
        WireStmt,
        WireStmt,
        Start,
        Start,
        SetProperty,
        Promote,
        Demote,
    ]


def test_parse_paths_and_ports():
    script = parse(FULL_SCRIPT)
    stop = script.statements[0]
    assert stop.path == Path("ftm", "syncBefore")
    wire = script.statements[8]
    assert wire.source == Path("ftm", "protocol")
    assert wire.reference == "before"
    assert wire.target == Path("ftm", "syncBefore")
    assert wire.service == "sync"


def test_parse_set_property_literals():
    for literal, expected in [
        ('"text"', "text"),
        ("42", 42),
        ("3.5", 3.5),
        ("true", True),
        ("false", False),
        ("null", None),
    ]:
        script = parse(f'transition "t" {{ set c/x.key = {literal}; }}')
        statement = script.statements[0]
        assert statement.value == expected


def test_parse_promote_demote():
    script = parse(FULL_SCRIPT)
    promote = script.statements[13]
    assert isinstance(promote, Promote)
    assert (promote.external, promote.component, promote.service) == (
        "front",
        "protocol",
        "request",
    )
    demote = script.statements[14]
    assert (demote.composite, demote.external) == ("ftm", "old_front")


def test_parse_missing_semicolon():
    with pytest.raises(ScriptSyntaxError, match="expected ;"):
        parse('transition "t" { stop a/b }')


def test_parse_unknown_keyword():
    with pytest.raises(ScriptSyntaxError, match="unknown statement keyword"):
        parse('transition "t" { frobnicate a/b; }')


def test_parse_unterminated_block():
    with pytest.raises(ScriptSyntaxError, match="unterminated"):
        parse('transition "t" { stop a/b;')


def test_parse_requires_transition_header():
    with pytest.raises(ScriptSyntaxError, match="expected 'transition'"):
        parse('{ stop a/b; }')


def test_parse_bad_literal():
    with pytest.raises(ScriptSyntaxError, match="expected literal"):
        parse('transition "t" { set c/x.key = stop; }')


def test_touched_components_lists_adds():
    script = parse(FULL_SCRIPT)
    assert script.touched_components() == ("syncAfter", "syncBefore")


# -- render roundtrip -----------------------------------------------------------------


def test_render_roundtrip():
    script = parse(FULL_SCRIPT)
    rendered = render(script)
    reparsed = parse(rendered)
    assert reparsed == script


def test_render_literal_escaping():
    script = parse('transition "t" { set c/x.key = "a\\"b"; }')
    assert parse(render(script)) == script
