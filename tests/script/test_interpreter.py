"""Unit tests for the transactional script interpreter and validation."""

import pytest

from repro.components import (
    AssemblySpec,
    ComponentImpl,
    ComponentSpec,
    LifecycleState,
    Multiplicity,
    PromotionSpec,
    WireSpec,
    make_runtime,
)
from repro.script import (
    ScriptException,
    ScriptInterpreter,
    parse,
    render,
    script_from_diff,
    validate_script,
)
from repro.kernel import World


class Producer(ComponentImpl):
    SERVICES = {"io": ("produce",)}

    def produce(self):
        return self.prop("value", "original")


class ProducerV2(Producer):
    def produce(self):
        return "v2"


class Consumer(ComponentImpl):
    SERVICES = {"io": ("pull",)}
    REFERENCES = {"upstream": Multiplicity.ONE}

    def pull(self):
        result = yield from self.ref("upstream").invoke("produce")
        return result


def base_spec(producer_class=Producer):
    return AssemblySpec(
        name="base",
        components=(
            ComponentSpec.make("producer", producer_class),
            ComponentSpec.make("consumer", Consumer),
        ),
        wires=(WireSpec("consumer", "upstream", "producer", "io"),),
        promotions=(PromotionSpec("front", "consumer", "io"),),
    )


@pytest.fixture
def deployed():
    world = World(seed=4)
    node = world.add_node("alpha")
    runtime = make_runtime(world, node)
    composite = world.run_process(runtime.deploy(base_spec()), name="deploy")
    return world, runtime, composite


def run_script(world, runtime, text, package=None):
    interpreter = ScriptInterpreter(runtime)
    script = parse(text)
    return world.run_process(
        interpreter.execute(script, package or {}), name="script"
    )


# -- happy paths ------------------------------------------------------------------


def test_replace_component_via_script(deployed):
    world, runtime, composite = deployed
    package = {"producer": ComponentSpec.make("producer", ProducerV2)}
    run_script(
        world,
        runtime,
        '''
        transition "swap" {
            stop base/producer;
            unwire base/consumer.upstream -> base/producer.io;
            remove base/producer;
            add base/producer from package;
            wire base/consumer.upstream -> base/producer.io;
            start base/producer;
        }
        ''',
        package,
    )
    result = world.run_process(composite.call("front", "pull"), name="call")
    assert result == "v2"


def test_set_property_via_script(deployed):
    world, runtime, composite = deployed
    run_script(
        world,
        runtime,
        'transition "tune" { set base/producer.value = "tuned"; }',
    )
    result = world.run_process(composite.call("front", "pull"), name="call")
    assert result == "tuned"


def test_promote_demote_via_script(deployed):
    world, runtime, composite = deployed
    run_script(
        world,
        runtime,
        '''
        transition "expose" {
            promote direct -> base/producer.io;
            demote base front;
        }
        ''',
    )
    assert "direct" in composite.promotions
    assert "front" not in composite.promotions


def test_script_charges_virtual_time(deployed):
    world, runtime, _composite = deployed
    t0 = world.now
    run_script(world, runtime, 'transition "noop-ish" { stop base/producer; start base/producer; }')
    costs = world.costs
    floor = costs.script_parse + 2 * costs.script_step + costs.script_commit
    assert world.now - t0 >= floor * 0.9


def test_interpreter_counters(deployed):
    world, runtime, _composite = deployed
    interpreter = ScriptInterpreter(runtime)
    script = parse('transition "t" { set base/producer.value = "x"; }')
    world.run_process(interpreter.execute(script, {}), name="s")
    assert interpreter.executed_scripts == 1
    assert interpreter.rolled_back_scripts == 0


# -- rollback ----------------------------------------------------------------------


def test_failing_statement_rolls_back_everything(deployed):
    world, runtime, composite = deployed
    with pytest.raises(ScriptException):
        run_script(
            world,
            runtime,
            '''
            transition "bad" {
                set base/producer.value = "changed";
                stop base/producer;
                remove base/ghost;
            }
            ''',
        )
    # property restored, producer running again
    producer = composite.component("producer")
    assert producer.get_property("value") is None
    assert producer.state == LifecycleState.STARTED
    result = world.run_process(composite.call("front", "pull"), name="call")
    assert result == "original"


def test_add_missing_from_package_rolls_back(deployed):
    world, runtime, composite = deployed
    with pytest.raises(ScriptException, match="not in the transition package"):
        run_script(
            world,
            runtime,
            'transition "bad" { add base/newcomp from package; }',
            package={},
        )
    assert not composite.has("newcomp")


def test_integrity_violation_at_commit_rolls_back(deployed):
    world, runtime, composite = deployed
    # unwiring the consumer's required reference while it stays started
    # passes statement-by-statement but must fail the commit check
    with pytest.raises(ScriptException, match="unwired required reference"):
        run_script(
            world,
            runtime,
            'transition "bad" { unwire base/consumer.upstream -> base/producer.io; }',
        )
    # wire restored by rollback
    assert composite.component("consumer").reference("upstream").wired
    result = world.run_process(composite.call("front", "pull"), name="call")
    assert result == "original"


def test_rollback_restores_removed_component(deployed):
    world, runtime, composite = deployed
    with pytest.raises(ScriptException):
        run_script(
            world,
            runtime,
            '''
            transition "bad" {
                stop base/producer;
                unwire base/consumer.upstream -> base/producer.io;
                remove base/producer;
                remove base/ghost;
            }
            ''',
        )
    assert composite.has("producer")
    assert composite.component("producer").state == LifecycleState.STARTED
    result = world.run_process(composite.call("front", "pull"), name="call")
    assert result == "original"


def test_rollback_counter_incremented(deployed):
    world, runtime, _composite = deployed
    interpreter = ScriptInterpreter(runtime)
    script = parse('transition "bad" { remove base/ghost; }')
    with pytest.raises(ScriptException):
        world.run_process(interpreter.execute(script, {}), name="s")
    assert interpreter.rolled_back_scripts == 1
    assert interpreter.executed_scripts == 0


def test_cross_composite_wire_rejected(deployed):
    world, runtime, _composite = deployed
    with pytest.raises(ScriptException, match="cross-composite"):
        run_script(
            world,
            runtime,
            'transition "bad" { wire base/consumer.upstream -> other/x.io; }',
        )


# -- script generation from diffs --------------------------------------------------------


def test_script_from_diff_replaces_only_variable_feature():
    diff = base_spec(Producer).diff(base_spec(ProducerV2))
    script = script_from_diff(diff, "base")
    text = render(script)
    assert "stop base/producer;" in text
    assert "remove base/producer;" in text
    assert "add base/producer from package;" in text
    assert "start base/producer;" in text
    # consumer is a common part: never stopped or removed
    assert "stop base/consumer" not in text
    assert "remove base/consumer" not in text


def test_generated_script_executes(deployed):
    world, runtime, composite = deployed
    diff = base_spec(Producer).diff(base_spec(ProducerV2))
    script = script_from_diff(diff, "base")
    package = {spec.name: spec for spec in diff.new_components()}
    interpreter = ScriptInterpreter(runtime)
    world.run_process(interpreter.execute(script, package), name="s")
    result = world.run_process(composite.call("front", "pull"), name="call")
    assert result == "v2"


def test_identity_diff_generates_empty_script():
    diff = base_spec().diff(base_spec())
    script = script_from_diff(diff, "base")
    assert len(script) == 0


# -- static validation --------------------------------------------------------------------


def snapshot(composite):
    return {composite.name: composite.architecture()}


def test_validate_accepts_good_script(deployed):
    _world, _runtime, composite = deployed
    diff = base_spec(Producer).diff(base_spec(ProducerV2))
    script = script_from_diff(diff, "base")
    problems = validate_script(script, snapshot(composite), ["producer"])
    assert problems == []


def test_validate_rejects_unknown_component(deployed):
    _world, _runtime, composite = deployed
    script = parse('transition "t" { stop base/ghost; }')
    problems = validate_script(script, snapshot(composite), [])
    assert any("unknown component 'ghost'" in p for p in problems)


def test_validate_rejects_add_outside_package(deployed):
    _world, _runtime, composite = deployed
    script = parse('transition "t" { add base/widget from package; }')
    problems = validate_script(script, snapshot(composite), [])
    assert any("not in package" in p for p in problems)


def test_validate_rejects_remove_while_wired(deployed):
    _world, _runtime, composite = deployed
    script = parse(
        'transition "t" { stop base/producer; remove base/producer; }'
    )
    problems = validate_script(script, snapshot(composite), [])
    assert any("still wired" in p for p in problems)


def test_validate_flags_component_left_stopped(deployed):
    _world, _runtime, composite = deployed
    script = parse('transition "t" { stop base/producer; }')
    problems = validate_script(script, snapshot(composite), [])
    assert any("left stopped" in p for p in problems)


def test_validate_unknown_composite():
    script = parse('transition "t" { stop ghost/x; }')
    problems = validate_script(script, {}, [])
    assert any("unknown composite" in p for p in problems)
