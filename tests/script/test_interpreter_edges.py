"""Edge cases of the transactional interpreter: rollbacks of every statement."""

import pytest

from repro.components import (
    AssemblySpec,
    ComponentImpl,
    ComponentSpec,
    LifecycleState,
    Multiplicity,
    PromotionSpec,
    WireSpec,
    make_runtime,
)
from repro.kernel import World
from repro.script import ScriptException, ScriptInterpreter, parse


class Leaf(ComponentImpl):
    SERVICES = {"io": ("ping",)}

    def ping(self):
        return "pong"


class Chain(ComponentImpl):
    SERVICES = {"io": ("pull",)}
    REFERENCES = {"next": Multiplicity.OPTIONAL}

    def pull(self):
        if not self.ref("next").wired:
            return "end"
        result = yield from self.ref("next").invoke("ping")
        return result


def spec():
    return AssemblySpec(
        name="c",
        components=(
            ComponentSpec.make("leaf", Leaf, {"tag": "original"}),
            ComponentSpec.make("chain", Chain),
        ),
        wires=(WireSpec("chain", "next", "leaf", "io"),),
        promotions=(PromotionSpec("front", "chain", "io"),),
    )


@pytest.fixture
def deployed():
    world = World(seed=96)
    node = world.add_node("alpha")
    runtime = make_runtime(world, node)
    composite = world.run_process(runtime.deploy(spec()), name="deploy")
    return world, runtime, composite


def fail_script(world, runtime, body, package=None):
    """Run a script whose last statement fails; assert rollback happened."""
    text = f'transition "t" {{ {body} remove c/ghost; }}'
    interpreter = ScriptInterpreter(runtime)
    with pytest.raises(ScriptException):
        world.run_process(interpreter.execute(parse(text), package or {}), name="s")
    return interpreter


def test_rollback_restores_promotion_changes(deployed):
    world, runtime, composite = deployed
    fail_script(world, runtime, "demote c front; promote side -> c/leaf.io;")
    assert composite.promotions == {"front": ("chain", "io")}


def test_rollback_restores_wire_changes(deployed):
    world, runtime, composite = deployed
    fail_script(world, runtime, "unwire c/chain.next -> c/leaf.io;")
    assert composite.component("chain").reference("next").wired


def test_rollback_removes_added_components(deployed):
    world, runtime, composite = deployed
    package = {"extra": ComponentSpec.make("extra", Leaf)}
    fail_script(world, runtime, "add c/extra from package;", package)
    assert not composite.has("extra")


def test_rollback_restores_property_deletion_semantics(deployed):
    world, runtime, composite = deployed
    # 'freshkey' did not exist before: rollback must delete it, not null it
    fail_script(world, runtime, 'set c/leaf.freshkey = "v";')
    leaf = composite.component("leaf")
    assert "freshkey" not in leaf.properties
    # 'tag' existed: rollback must restore the old value
    fail_script(world, runtime, 'set c/leaf.tag = "changed";')
    assert leaf.get_property("tag") == "original"


def test_rollback_restores_stop_start_states(deployed):
    world, runtime, composite = deployed
    fail_script(world, runtime, "stop c/leaf;")
    assert composite.component("leaf").state == LifecycleState.STARTED


def test_rollback_of_start_statement(deployed):
    world, runtime, composite = deployed

    # first legitimately stop the leaf (unwire chain to keep integrity)
    def stage():
        yield from runtime.unwire("c", "chain", "next", "leaf", "io")
        yield from runtime.stop_component("c", "leaf")

    world.run_process(stage(), name="stage")
    fail_script(world, runtime, "start c/leaf;")
    assert composite.component("leaf").state == LifecycleState.STOPPED


def test_failed_script_charges_rollback_time(deployed):
    world, runtime, _composite = deployed
    t0 = world.now
    fail_script(world, runtime, 'set c/leaf.tag = "x";')
    assert world.now - t0 >= world.costs.script_rollback * 0.9


def test_successful_script_after_failed_one(deployed):
    world, runtime, composite = deployed
    fail_script(world, runtime, 'set c/leaf.tag = "x";')
    interpreter = ScriptInterpreter(runtime)
    world.run_process(
        interpreter.execute(parse('transition "ok" { set c/leaf.tag = "y"; }'), {}),
        name="s",
    )
    assert composite.component("leaf").get_property("tag") == "y"


def test_empty_script_commits_trivially(deployed):
    world, runtime, _composite = deployed
    interpreter = ScriptInterpreter(runtime)
    world.run_process(
        interpreter.execute(parse('transition "empty" { }'), {}), name="s"
    )
    assert interpreter.executed_scripts == 1
