"""Crash faults at script-statement boundaries (property-style).

A crash caught at ANY statement boundary of the reconfiguration script
must leave the replica's composite transactionally clean before the
fail-silent wrapper takes the node down: the undo stack fully unwound
(the architecture is byte-for-byte the pre-script one) and the input
gate reopened.  The test parametrises over every boundary of the
pbr->lfr script and checks the invariant on a composite reference held
from *before* the transition — exactly what a concurrent observer
(a buffered request, a monitor) would see.
"""

import pytest

from repro.core import AdaptationEngine
from repro.ftm import deploy_ftm_pair
from repro.kernel import Timeout, World


def _snapshot(composite):
    """The observable architecture: components, states, wires, promotions."""
    arch = composite.architecture()
    return (
        tuple(sorted(arch["components"].items())),
        tuple(sorted(map(tuple, arch["wires"]))),
        tuple(sorted(arch["promotions"].items())),
    )


def _script_length():
    from repro.core import Repository

    package = Repository().transition_package(
        "pbr", "lfr", role="slave", peer="alpha"
    )
    return len(package.script.statements)


SCRIPT_LENGTH = _script_length()


@pytest.mark.parametrize("boundary", range(SCRIPT_LENGTH))
def test_crash_at_each_statement_boundary_rolls_back_cleanly(boundary):
    world = World(seed=80 + boundary)
    world.add_nodes(["alpha", "beta", "client"])

    def deploy():
        pair = yield from deploy_ftm_pair(world, "pbr", ["alpha", "beta"])
        return pair

    pair = world.run_process(deploy(), name="deploy")
    engine = AdaptationEngine(world, pair)

    beta = pair.replica_on("beta")
    held_composite = beta.composite  # the pre-transition reference
    before = _snapshot(held_composite)
    assert held_composite.gate_open

    world.faults.arm_transition_fault(
        "script", "crash", node="beta", at_statement=boundary
    )

    def do():
        report = yield from engine.transition("lfr")
        yield Timeout(1_000.0)
        return report

    report = world.run_process(do(), name="crash-at-boundary")

    beta_report = next(r for r in report.replicas if r.node == "beta")
    assert beta_report.killed
    assert beta_report.success is False
    assert f"statement {boundary}" in (beta_report.error or "")

    # the undo stack was fully unwound on the held composite: the
    # architecture observed through the old reference is the pre-script one
    assert _snapshot(held_composite) == before
    # ... and the gate was reopened before the kill (buffered requests
    # were never stranded behind a closed gate)
    assert held_composite.gate_open

    # only then did the fail-silent wrapper take the node down
    assert not world.cluster.node("beta").is_up
    assert world.trace.count("script", "rollback") == 1

    # the peer completed: the transition as a whole still succeeded
    alpha_report = next(r for r in report.replicas if r.node == "alpha")
    assert alpha_report.success
    assert pair.ftm == "lfr"


def test_script_crash_budget_is_consumed_once():
    """A budget-1 crash fires on one replica only; a rerun is clean."""
    world = World(seed=99)
    world.add_nodes(["alpha", "beta", "client"])

    def deploy():
        pair = yield from deploy_ftm_pair(world, "pbr", ["alpha", "beta"])
        return pair

    pair = world.run_process(deploy(), name="deploy")
    pair.enable_recovery(restart_delay=300.0)
    engine = AdaptationEngine(world, pair)
    world.faults.arm_transition_fault(
        "script", "crash", node="beta", at_statement=0
    )

    def do():
        first = yield from engine.transition("lfr")
        yield Timeout(10_000.0)  # beta recovers into lfr
        second = yield from engine.transition("pbr")
        return first, second

    first, second = world.run_process(do(), name="two-transitions")
    assert first.success
    assert next(r for r in first.replicas if r.node == "beta").killed
    # the budget was spent: the second transition runs fault-free
    assert second.success
    assert all(r.success for r in second.replicas)
    assert world.faults.transition_faults_injected == {"script/crash": 1}
