"""Extra kernel coverage: cost scaling, trace queries, network details."""

import pytest

from repro.kernel import CostModel, DEFAULT_COSTS, Link, World


# -- cost model -------------------------------------------------------------


def test_scaled_multiplies_time_costs():
    doubled = DEFAULT_COSTS.scaled(2.0)
    assert doubled.component_install == DEFAULT_COSTS.component_install * 2
    assert doubled.runtime_boot == DEFAULT_COSTS.runtime_boot * 2
    assert doubled.script_step == DEFAULT_COSTS.script_step * 2


def test_scaled_leaves_non_time_parameters_alone():
    doubled = DEFAULT_COSTS.scaled(2.0)
    assert doubled.link_bandwidth == DEFAULT_COSTS.link_bandwidth
    assert doubled.jitter_fraction == DEFAULT_COSTS.jitter_fraction
    assert doubled.energy_per_ms_busy == DEFAULT_COSTS.energy_per_ms_busy


def test_cost_model_is_frozen():
    with pytest.raises(Exception):
        DEFAULT_COSTS.runtime_boot = 0  # type: ignore[misc]


def test_world_accepts_custom_costs():
    fast = CostModel().scaled(0.5)
    world = World(seed=1, costs=fast)
    node = world.add_node("alpha")
    assert node.costs.runtime_boot == pytest.approx(475.0)


# -- link model ---------------------------------------------------------------


def test_link_transfer_time():
    link = Link(latency=1.0, bandwidth=100.0)
    assert link.transfer_time(0) == 1.0
    assert link.transfer_time(1000) == 11.0


def test_network_flush_node_drops_buffered():
    world = World(seed=2)
    world.add_nodes(["alpha", "beta"])
    mailbox = world.network.bind("beta", "in")
    world.network.send("alpha", "beta", "in", payload="x")
    world.run()
    assert len(mailbox) == 1
    world.network.flush_node("beta")
    assert len(mailbox) == 0


def test_network_unbind_makes_deliveries_drop():
    world = World(seed=3)
    world.add_nodes(["alpha", "beta"])
    world.network.bind("beta", "in")
    world.network.unbind("beta", "in")
    world.network.send("alpha", "beta", "in", payload="x")
    world.run()
    assert world.network.messages_dropped == 1


def test_loopback_delivery():
    world = World(seed=4)
    world.add_node("alpha")
    mailbox = world.network.bind("alpha", "self")
    world.network.send("alpha", "alpha", "self", payload="me")
    world.run()
    assert mailbox.drain()[0].payload == "me"


def test_set_link_asymmetric():
    world = World(seed=5)
    world.add_nodes(["alpha", "beta"])
    world.network.set_link("alpha", "beta", bandwidth=1.0, symmetric=False)
    assert world.network.link("alpha", "beta").bandwidth == 1.0
    assert world.network.link("beta", "alpha").bandwidth != 1.0


# -- trace ------------------------------------------------------------------------


def test_trace_summary_histogram():
    world = World(seed=6)
    world.add_node("alpha").crash()
    world.cluster.node("alpha").restart()
    world.cluster.node("alpha").crash()
    summary = world.trace.summary()
    assert summary["node.crash"] == 2
    assert summary["node.restart"] == 1


def test_trace_disable_enable():
    world = World(seed=7)
    world.trace.enabled = False
    world.add_node("alpha").crash()
    assert world.trace.records == []
    world.trace.enabled = True
    world.cluster.node("alpha").restart()
    assert world.trace.count("node", "restart") == 1


def test_trace_since_filter():
    world = World(seed=8)
    node = world.add_node("alpha")
    node.crash()
    node.restart()
    world.sim.schedule(100.0, node.crash)
    world.run()
    late = world.trace.select("node", "crash", since=50.0)
    assert len(late) == 1


def test_energy_accounting_includes_idle_and_bytes():
    world = World(seed=9)
    world.add_nodes(["alpha", "beta"])
    world.network.bind("beta", "in")
    alpha = world.cluster.node("alpha")
    world.network.send("alpha", "beta", "in", payload="x", size=10_000)
    world.run()
    assert alpha.energy == pytest.approx(
        10_000 * world.costs.energy_per_byte_sent
    )
