"""World snapshot/reset and the arena: reuse must be invisible.

The whole mission-lifecycle refactor rests on one invariant: after
``world.reset(snapshot, seed)`` the world is *behaviourally
byte-identical* to a freshly built ``World(seed=seed)`` with the same
nodes — same RNG draws, same event ordering, same traces.  These tests
pin that invariant at the kernel level (the eval-layer store comparisons
live in ``tests/eval/test_world_reuse_identity.py``), plus the resource
regressions reuse must not introduce: N reset cycles leave every queue,
arena and trace flat.
"""

import pytest

from repro.kernel import (
    Timeout,
    World,
    WorldArena,
    WorldTask,
    clear_world_arena,
    lease_world,
    release_world,
    run_solo,
    set_world_reuse,
    world_arena_stats,
    world_reuse_enabled,
)

NODES = ["alpha", "beta", "client"]


@pytest.fixture(autouse=True)
def _isolated_arena():
    """Each test starts with reuse on and an empty process arena."""
    set_world_reuse(True)
    clear_world_arena()
    yield
    set_world_reuse(True)
    clear_world_arena()


def _mission(world, requests=4):
    """A small but representative mission: timers, RNG, traffic, storage."""

    def scenario():
        rng = world.sim.random.substream("mission")
        box = world.network.bind("beta", "svc")
        seen = []
        log = []

        def on_message(message):
            seen.append(message)

        box.set_sink(on_message)
        for i in range(requests):
            yield Timeout(1.0 + rng.random())
            world.network.send("alpha", "beta", "svc", ("req", i), 64)
            log.append(rng.randint(0, 10_000))
        yield Timeout(50.0)
        world.storage.write("alpha", "log", list(log))
        world.storage.append("missions", {"seen": len(seen)})
        return {
            "draws": log,
            "seen": len(seen),
            "now": world.sim.now,
            "trace": [
                (r.time, r.category, r.event) for r in world.trace.records
            ],
        }

    return world.run_process(scenario(), name="mission")


def _fresh_result(seed):
    world = World(seed=seed)
    world.add_nodes(list(NODES))
    return _mission(world)


def test_reset_replays_fresh_behaviour_exactly():
    """reset(snapshot, seed) == fresh World(seed): draws, traces, clock."""
    world = World(seed=1)
    world.add_nodes(list(NODES))
    snapshot = world.snapshot()
    for seed in (1, 7, 99, 7):  # includes a revisited seed
        world.reset(snapshot, seed)
        assert _mission(world) == _fresh_result(seed)


def test_reset_restores_node_and_network_config():
    world = World(seed=3)
    world.add_nodes(list(NODES), cpu_speed={"beta": 0.5})
    world.network.set_link("alpha", "beta", latency=12.5, bandwidth=100.0)
    snapshot = world.snapshot()
    reference = _mission(world)

    # scribble over everything the snapshot should protect
    world.cluster.nodes["beta"].cpu_speed = 4.0
    world.network.set_link("alpha", "beta", latency=0.1)
    world.add_node("intruder")
    world.storage.write("alpha", "junk", 1)

    world.reset(snapshot, 3)
    assert "intruder" not in world.cluster.nodes
    assert world.cluster.nodes["beta"].cpu_speed == 0.5
    assert not world.storage.exists("alpha", "junk")
    assert _mission(world) == reference


def test_reset_drops_mailboxes_created_after_snapshot():
    """A mailbox bound mid-mission must vanish on reset — a surviving
    mailbox would buffer sends a fresh world drops as ``no_mailbox``."""
    world = World(seed=5)
    world.add_nodes(list(NODES))
    snapshot = world.snapshot()
    world.network.bind("client", "late")
    world.reset(snapshot, 5)

    world.network.send("alpha", "client", "late", "hello", 16)
    world.sim.run()
    drops = [
        r for r in world.trace.records
        if r.category == "network" and r.event == "drop"
    ]
    assert drops and drops[0].detail("reason") == "no_mailbox"


def test_reset_cycles_leave_resources_flat():
    """The leak regression: N missions over one world grow nothing."""
    world = World(seed=11)
    world.add_nodes(list(NODES))
    snapshot = world.snapshot()

    def sizes():
        sim = world.sim
        return {
            "heap": len(sim._queue),
            "ready": len(sim._ready),
            "processes": len(sim.processes),
            "arena": len(sim._process_arena),
            "trace": len(world.trace.records),
            "mailboxes": len(world.network._mailboxes),
            "channel_arena": len(world.network._channel_arena),
            "storage": len(world.storage._data),
            "logs": len(world.storage._logs),
        }

    world.reset(snapshot, 0)
    _mission(world)
    world.reset(snapshot, 0)
    _mission(world)
    steady = sizes()
    for cycle in range(20):
        world.reset(snapshot, cycle)
        _mission(world)
    assert sizes() == steady


def test_trim_empties_dynamic_state_without_breaking_reset():
    world = World(seed=13)
    world.add_nodes(list(NODES))
    snapshot = world.snapshot()
    reference = _mission(world)

    world.trim()
    assert len(world.trace.records) == 0
    assert len(world.storage._data) == 0
    assert len(world.sim.processes) == 0
    assert len(world.sim._queue) == 0

    world.reset(snapshot, 13)
    assert _mission(world) == reference


def test_process_arena_recycles_shells():
    world = World(seed=17)
    world.add_nodes(list(NODES))
    snapshot = world.snapshot()
    _mission(world)
    world.reset(snapshot, 17)
    parked = len(world.sim._process_arena)
    assert parked > 0
    _mission(world)
    # the second mission spawned from the arena instead of allocating
    assert len(world.sim._process_arena) < parked or parked == 0


def test_arena_lease_hits_after_release():
    arena = WorldArena()

    def build(seed):
        world = World(seed=seed)
        world.add_nodes(list(NODES))
        return world

    first = arena.lease("k", 1, build)
    assert arena.misses == 1
    release_world(first)
    second = arena.lease("k", 2, build)
    assert second is first
    assert arena.hits == 1
    assert _mission(second) == _fresh_result(2)


def test_release_world_is_idempotent():
    arena = WorldArena()
    world = arena.lease("k", 1, lambda seed: World(seed=seed))
    release_world(world)
    release_world(world)  # second call must not double-park
    assert arena.pooled() == 1


def test_reuse_toggle_bypasses_arena():
    set_world_reuse(False)
    assert not world_reuse_enabled()
    a = lease_world("toggle", 1, lambda seed: World(seed=seed))
    release_world(a)
    b = lease_world("toggle", 1, lambda seed: World(seed=seed))
    assert b is not a
    assert world_arena_stats()["pooled"] == 0

    set_world_reuse(True)
    c = lease_world("toggle", 1, lambda seed: World(seed=seed))
    release_world(c)
    d = lease_world("toggle", 1, lambda seed: World(seed=seed))
    assert d is c


def test_run_solo_returns_leased_world_to_arena():
    def build(seed):
        world = World(seed=seed)
        world.add_nodes(list(NODES))
        return world

    def task(seed):
        world = lease_world("solo", seed, build)

        def scenario():
            yield Timeout(1.0)
            return world.sim.random.randint(0, 100)

        return WorldTask(world, scenario(), name="t")

    first = run_solo(task(1))
    stats = world_arena_stats()
    assert stats["pooled"] == 1
    second = run_solo(task(1))
    assert first == second
    assert world_arena_stats()["hits"] == 1
