"""WorldPool / WorldTask: co-scheduling must never change results.

The pool's contract (see :mod:`repro.kernel.coschedule`) is that worlds
share no state, so interleaving N of them inside one process produces
exactly the results of running each alone.  These tests exercise the
contract on synthetic worlds (where every RNG draw and clock read would
expose cross-talk) and the error paths (failing tasks, deadlocks).
"""

import pytest

from repro.kernel import (
    Event,
    SimulationError,
    Timeout,
    World,
    WorldPool,
    WorldTask,
    run_cotasks,
    run_solo,
)


def _rng_task(seed, steps=5):
    """A task whose result encodes its RNG stream and local clock — any
    cross-world leakage would change it."""
    world = World(seed=seed)

    def scenario():
        values = []
        for _ in range(steps):
            yield Timeout(float(1 + seed % 5))
            values.append(world.sim.random.randint(0, 10_000))
        return {"seed": seed, "values": values, "end": world.sim.now}

    return WorldTask(world, scenario(), name=f"rng-{seed}")


def _failing_task():
    world = World(seed=1)

    def scenario():
        yield Timeout(1.0)
        raise RuntimeError("boom")

    return WorldTask(world, scenario(), name="failing")


def _deadlocked_task():
    world = World(seed=2)

    def scenario():
        yield Event(world.sim)  # never triggered

    return WorldTask(world, scenario(), name="stuck")


SEEDS = (3, 11, 12, 20, 47)


def test_pool_results_match_solo_in_task_order():
    solo = [run_solo(_rng_task(seed)) for seed in SEEDS]
    pooled = WorldPool([_rng_task(seed) for seed in SEEDS]).run()
    assert pooled == solo


def test_pool_of_one_matches_solo():
    assert WorldPool([_rng_task(7)]).run() == [run_solo(_rng_task(7))]


def test_pool_limit_is_only_a_fairness_knob():
    # a budget of one event per turn maximises interleaving; results
    # must not move
    solo = [run_solo(_rng_task(seed)) for seed in SEEDS]
    assert WorldPool([_rng_task(s) for s in SEEDS], limit=1).run() == solo


def test_pool_rejects_nonpositive_limit():
    with pytest.raises(ValueError):
        WorldPool([], limit=0)


def test_failing_task_propagates_from_pool():
    with pytest.raises(RuntimeError, match="boom"):
        WorldPool([_rng_task(3), _failing_task()]).run()


def test_failing_task_propagates_from_solo():
    with pytest.raises(RuntimeError, match="boom"):
        run_solo(_failing_task())


def test_deadlocked_task_raises_like_run_process():
    with pytest.raises(SimulationError, match="never terminated"):
        run_solo(_deadlocked_task())
    with pytest.raises(SimulationError, match="never terminated"):
        WorldPool([_rng_task(3), _deadlocked_task()]).run()


def test_result_before_completion_raises():
    task = _rng_task(5)
    assert not task.done
    with pytest.raises(SimulationError, match="has not finished"):
        task.result()


def test_worldtask_adds_nodes_and_accepts_callable_scenario():
    world = World(seed=9)

    def scenario(w):
        yield Timeout(1.0)
        return sorted(w.cluster.nodes)

    task = WorldTask(world, scenario, nodes=("alpha", "beta"))
    assert run_solo(task) == ["alpha", "beta"]


def test_run_cotasks_groups_match_sequential():
    builders = [
        (lambda seed=seed: _rng_task(seed)) for seed in SEEDS
    ]
    sequential = run_cotasks(builders, coschedule=1)
    grouped = run_cotasks(builders, coschedule=2)
    whole = run_cotasks(builders, coschedule=len(builders))
    assert grouped == sequential == whole


def test_pool_interleaves_real_missions_byte_identically():
    # the campaign's own mission task through the pool: the workload the
    # runner co-schedules in production
    from repro.eval import campaign

    seeds = (5001, 5002, 5003)
    solo = [run_solo(campaign.mission_task(s, requests=6)) for s in seeds]
    pooled = WorldPool(
        [campaign.mission_task(s, requests=6) for s in seeds]
    ).run()
    assert pooled == solo
