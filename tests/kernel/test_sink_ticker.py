"""Channel sinks and node tickers — the receive/send fast paths.

Both exist so high-frequency streams (failure-detector heartbeats)
avoid a generator resume per item; semantically they must be
indistinguishable from the get-loop / Timeout-loop they replace.
"""

import pytest

from repro.kernel import Channel, NodeDown, Simulator, Timeout, World


# -- Channel.set_sink --------------------------------------------------------


def test_sink_consumes_puts_synchronously_in_order():
    sim = Simulator()
    ch = Channel(sim)
    seen = []
    ch.set_sink(seen.append)
    ch.put("a")
    ch.put("b")
    assert seen == ["a", "b"]  # no sim step needed: consumed inside put
    assert len(ch) == 0


def test_installing_sink_drains_buffered_items_in_order():
    sim = Simulator()
    ch = Channel(sim)
    ch.put(1)
    ch.put(2)
    seen = []
    ch.set_sink(seen.append)
    assert seen == [1, 2]
    ch.put(3)
    assert seen == [1, 2, 3]


def test_pending_getter_keeps_priority_over_sink():
    sim = Simulator()
    ch = Channel(sim)
    got = []
    sunk = []

    def consumer():
        got.append((yield ch.get()))

    process = sim.spawn(consumer())
    sim.run()  # park the getter
    ch.set_sink(sunk.append)
    ch.put("for-getter")
    sim.run()
    assert got == ["for-getter"]
    assert sunk == []
    assert not process.alive
    ch.put("for-sink")  # no getter left: the sink takes over
    assert sunk == ["for-sink"]


def test_detaching_sink_restores_buffering():
    sim = Simulator()
    ch = Channel(sim)
    seen = []
    ch.set_sink(seen.append)
    ch.put("x")
    ch.set_sink(None)
    ch.put("y")
    assert seen == ["x"]
    assert len(ch) == 1


# -- Node.every --------------------------------------------------------------


def test_every_fires_now_then_each_period():
    world = World(seed=1)
    node = world.add_node("alpha")
    ticks = []

    def observe():
        ticks.append(world.sim.now)

    ticker = node.every(10.0, observe)

    def scenario():
        yield Timeout(35.0)
        ticker.kill()
        yield Timeout(50.0)

    world.run_process(scenario())
    assert ticks == [0.0, 10.0, 20.0, 30.0]  # none after kill()
    assert not ticker.alive


def test_node_crash_kills_its_tickers():
    world = World(seed=1)
    node = world.add_node("alpha")
    ticks = []
    ticker = node.every(10.0, lambda: ticks.append(world.sim.now))

    def scenario():
        yield Timeout(25.0)
        node.crash()
        yield Timeout(50.0)

    world.run_process(scenario())
    assert ticks == [0.0, 10.0, 20.0]
    assert not ticker.alive


def test_every_on_downed_node_is_refused():
    world = World(seed=1)
    node = world.add_node("alpha")
    node.crash()
    with pytest.raises(NodeDown):
        node.every(5.0, lambda: None)
