"""The load-adaptive timer wheel: parity, cancellation, and bounds.

The wheel only engages once the overflow heap is ``_WHEEL_ENGAGE``
entries deep, which no realistic mission reaches — so these tests lower
the threshold (a module global read at call time by every inline engage
check in ``sim.py``) to force timed traffic through the bucket machinery
and pin its claims: identical replay order against the legacy single
heap, correct cancellation and re-arm behaviour, span overflow to the
heap, and bounded growth under mass schedule-and-cancel churn.
"""

import pytest

import repro.kernel.sim as simmod
from repro.kernel import Simulator, Timeout
from repro.kernel.sim import _WHEEL_GRANULARITY, _WHEEL_SPAN


@pytest.fixture
def engaged(monkeypatch):
    """Force every timed insert through the wheel path."""
    monkeypatch.setattr(simmod, "_WHEEL_ENGAGE", 0)


def _run_workload(sim, periods):
    """Self-rescheduling timers with mixed periods; returns the fire log."""
    log = []
    horizon = 600.0

    def make(tag, period):
        def tick():
            log.append((sim.now, tag))
            if sim.now + period < horizon:
                sim.call_later(period, tick)
        return tick

    for i, period in enumerate(periods):
        sim.call_later(period, make(i, period))
    sim.run()
    return log


def test_wheel_replays_legacy_order_across_period_regimes(engaged):
    # sub-granularity, around-granularity, long, and beyond-span periods
    # all at once: every routing branch (near-horizon heap, bucket
    # append, span overflow) must interleave into one global order
    periods = [0.5, 1.0, 3.0, 5.0, 17.0, 64.0, 300.0, _WHEEL_SPAN + 50.0]
    fast = _run_workload(Simulator(seed=3, fast_path=True), periods)
    legacy = _run_workload(Simulator(seed=3, fast_path=False), periods)
    assert fast == legacy
    assert len(fast) > 100


def test_mass_timers_fire_in_nondecreasing_time_order(engaged):
    sim = Simulator(seed=7, fast_path=True)
    rng = sim.random.substream("t")
    times = []
    for _ in range(3000):
        sim.schedule(rng.uniform(0.0, 3 * _WHEEL_SPAN),
                     lambda: times.append(sim.now))
    sim.run()
    assert len(times) == 3000
    assert times == sorted(times)


def test_cancelled_wheel_entries_never_fire(engaged):
    sim = Simulator(fast_path=True)
    fired = []
    keep = sim.schedule(40.0, fired.append, "keep")
    doomed = [sim.schedule(40.0, fired.append, f"no-{i}") for i in range(50)]
    for handle in doomed:
        handle.cancel()
    sim.run()
    assert fired == ["keep"]
    assert keep._fired


def test_cancel_after_engage_then_reschedule(engaged):
    # cancellation plus re-arm into the same bucket region: the pruned
    # entries must not disturb later inserts landing on the same slots
    sim = Simulator(fast_path=True)
    log = []
    handles = [sim.schedule(20.0 + i * 0.25, log.append, i) for i in range(40)]
    for handle in handles[::2]:
        handle.cancel()
    sim.run()
    assert log == [i for i in range(40) if i % 2]
    sim.schedule(20.0, log.append, "again")
    sim.run()
    assert log[-1] == "again"


def test_span_overflow_promotes_to_heap_and_fires_in_order(engaged):
    sim = Simulator(fast_path=True)
    log = []
    sim.schedule(2 * _WHEEL_SPAN, log.append, "far")
    sim.schedule(10.0, log.append, "near")
    sim.schedule(_WHEEL_SPAN - 1.0, log.append, "edge")
    assert len(sim._queue) >= 1  # the far entry overflowed
    sim.run()
    assert log == ["near", "edge", "far"]


def test_latecomer_into_consumed_bucket_rides_heap(engaged):
    # while a sorted bucket is being consumed, a fresh insert targeting
    # that same bucket must divert to the overflow heap yet still fire
    # in global time order
    sim = Simulator(fast_path=True)
    log = []
    base = 40.0  # all in one 4-unit bucket

    def first():
        log.append(sim.now)
        sim.schedule(1.0, lambda: log.append(sim.now))  # lands at 41.0

    sim.schedule(base, first)
    sim.schedule(base + 0.5, lambda: log.append(sim.now))
    sim.schedule(base + 2.0, lambda: log.append(sim.now))
    sim.run()
    assert log == [40.0, 40.5, 41.0, 42.0]


def test_cursor_advance_then_insert_behind_anchor(engaged):
    # consume far into the wheel so the anchor advances, then insert a
    # short timer (behind the advanced anchor): the near-horizon rule
    # must route it to the heap and preserve exact ordering
    sim = Simulator(fast_path=True)
    log = []
    sim.schedule(50 * _WHEEL_GRANULARITY, log.append, "far")
    sim.run()

    def react():
        log.append("react")
        sim.schedule(0.5, log.append, "short")
        sim.schedule(2 * _WHEEL_GRANULARITY + 1.0, log.append, "bucketed")

    sim.schedule(1.0, react)
    sim.run()
    assert log == ["far", "react", "short", "bucketed"]


def test_mass_schedule_and_cancel_stays_bounded(engaged):
    # mirror of the lazy-cancel heap compaction bound: 10k cancelled
    # wheel entries must be swept, not retained until their deadline
    sim = Simulator(fast_path=True)
    live = sim.schedule(1000.0, _nop_cb)
    for _ in range(10_000):
        sim.schedule(900.0, _nop_cb).cancel()
    resident = len(sim._queue) + sum(len(b) for b in sim._wheel)
    assert resident < 2_000
    assert sim.pending() == 1
    assert live.active
    sim.run()
    assert live._fired


def _nop_cb():
    pass


def test_peek_time_and_pending_with_wheel_engaged(engaged):
    sim = Simulator(fast_path=True)
    sim.schedule(60.0, _nop_cb)
    h = sim.schedule(30.0, _nop_cb)
    sim.schedule(90.0, _nop_cb)
    assert sim.peek_time() == 30.0
    assert sim.pending() == 3
    h.cancel()
    assert sim.peek_time() == 60.0
    assert sim.pending() == 2


def test_drain_and_reset_clear_wheel_state(engaged):
    sim = Simulator(seed=5, fast_path=True)
    for i in range(100):
        sim.schedule(10.0 + i, _nop_cb)
    sim.drain()
    assert sim.pending() == 0
    assert sim._wheel_count == 0
    assert all(not bucket for bucket in sim._wheel)
    sim.reset(seed=5)
    fired = []
    sim.schedule(12.0, fired.append, "post-reset")
    sim.run()
    assert fired == ["post-reset"]
    assert sim.now == 12.0


def test_timeout_waits_ride_the_wheel_identically(engaged):
    def proc(sim, log, tag, period, count):
        for _ in range(count):
            yield Timeout(period)
            log.append((sim.now, tag))

    def run(fast):
        sim = Simulator(seed=11, fast_path=fast)
        log = []
        for tag, period in enumerate([1.5, 7.0, 23.0, 160.0]):
            sim.spawn(proc(sim, log, tag, period, 20))
        sim.run()
        return log

    assert run(True) == run(False)
