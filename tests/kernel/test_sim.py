"""Unit tests for the discrete-event simulator core."""

import pytest

from repro.kernel import (
    TIMEOUT,
    Channel,
    Event,
    ProcessInterrupted,
    ProcessKilled,
    SimulationError,
    Simulator,
    Timeout,
    all_of,
)


def test_time_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_schedule_orders_by_time():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, "late")
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(3.0, fired.append, "middle")
    sim.run()
    assert fired == ["early", "middle", "late"]
    assert sim.now == 5.0


def test_schedule_same_time_is_fifo():
    sim = Simulator()
    fired = []
    for tag in range(5):
        sim.schedule(1.0, fired.append, tag)
    sim.run()
    assert fired == [0, 1, 2, 3, 4]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_handle_cancel_prevents_firing():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    handle.cancel()
    sim.run()
    assert fired == []
    assert not handle.active


def test_run_until_stops_clock():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run(until=4.0)
    assert sim.now == 4.0


def test_process_timeout_advances_clock():
    sim = Simulator()

    def proc():
        yield Timeout(2.5)
        yield Timeout(2.5)
        return "done"

    result = sim.run_process(proc())
    assert result == "done"
    assert sim.now == 5.0


def test_process_return_value():
    sim = Simulator()

    def proc():
        yield Timeout(1.0)
        return 42

    assert sim.run_process(proc()) == 42


def test_process_exception_propagates():
    sim = Simulator()

    def proc():
        yield Timeout(1.0)
        raise ValueError("boom")

    with pytest.raises(ValueError, match="boom"):
        sim.run_process(proc())


def test_spawn_requires_generator():
    sim = Simulator()
    with pytest.raises(SimulationError, match="generator"):
        sim.spawn(lambda: None)  # type: ignore[arg-type]


def test_yield_non_waitable_fails_process():
    sim = Simulator()

    def proc():
        yield 42

    with pytest.raises(SimulationError, match="non-waitable"):
        sim.run_process(proc())


def test_event_trigger_wakes_waiter_with_value():
    sim = Simulator()
    event = Event(sim)
    seen = []

    def waiter():
        value = yield event
        seen.append(value)

    sim.spawn(waiter())
    sim.schedule(3.0, event.trigger, "payload")
    sim.run()
    assert seen == ["payload"]
    assert sim.now == 3.0


def test_event_already_triggered_resumes_immediately():
    sim = Simulator()
    event = Event(sim)
    event.trigger("early")

    def waiter():
        value = yield event
        return value

    assert sim.run_process(waiter()) == "early"


def test_event_double_trigger_is_error():
    sim = Simulator()
    event = Event(sim)
    event.trigger()
    with pytest.raises(SimulationError):
        event.trigger()


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    event = Event(sim)

    def waiter():
        yield event

    sim.schedule(1.0, event.fail, RuntimeError("bad"))
    with pytest.raises(RuntimeError, match="bad"):
        sim.run_process(waiter())


def test_event_wakes_multiple_waiters():
    sim = Simulator()
    event = Event(sim)
    seen = []

    def waiter(tag):
        value = yield event
        seen.append((tag, value))

    sim.spawn(waiter("a"))
    sim.spawn(waiter("b"))
    sim.schedule(1.0, event.trigger, 7)
    sim.run()
    assert sorted(seen) == [("a", 7), ("b", 7)]


def test_channel_put_then_get():
    sim = Simulator()
    channel = Channel(sim)
    channel.put("item")

    def getter():
        item = yield channel.get()
        return item

    assert sim.run_process(getter()) == "item"


def test_channel_get_blocks_until_put():
    sim = Simulator()
    channel = Channel(sim)

    def getter():
        item = yield channel.get()
        return (item, sim.now)

    process = sim.spawn(getter())
    sim.schedule(4.0, channel.put, "late")
    sim.run()
    assert process.result == ("late", 4.0)


def test_channel_fifo_order_items():
    sim = Simulator()
    channel = Channel(sim)
    for index in range(3):
        channel.put(index)

    def getter():
        items = []
        for _ in range(3):
            item = yield channel.get()
            items.append(item)
        return items

    assert sim.run_process(getter()) == [0, 1, 2]


def test_channel_fifo_order_getters():
    sim = Simulator()
    channel = Channel(sim)
    got = []

    def getter(tag):
        item = yield channel.get()
        got.append((tag, item))

    sim.spawn(getter("first"))
    sim.spawn(getter("second"))
    sim.schedule(1.0, channel.put, "a")
    sim.schedule(2.0, channel.put, "b")
    sim.run()
    assert got == [("first", "a"), ("second", "b")]


def test_channel_get_timeout_returns_sentinel():
    sim = Simulator()
    channel = Channel(sim)

    def getter():
        item = yield channel.get(timeout=5.0)
        return (item, sim.now)

    assert sim.run_process(getter()) == (TIMEOUT, 5.0)


def test_channel_get_timeout_cancelled_by_put():
    sim = Simulator()
    channel = Channel(sim)

    def getter():
        item = yield channel.get(timeout=10.0)
        return (item, sim.now)

    process = sim.spawn(getter())
    sim.schedule(2.0, channel.put, "in-time")
    sim.run()
    assert process.result == ("in-time", 2.0)
    assert sim.now == 2.0  # the stale timeout never extends the run


def test_channel_drain():
    sim = Simulator()
    channel = Channel(sim)
    channel.put(1)
    channel.put(2)
    assert channel.drain() == [1, 2]
    assert len(channel) == 0


def test_join_returns_child_result():
    sim = Simulator()

    def child():
        yield Timeout(3.0)
        return "child-result"

    def parent():
        process = sim.spawn(child())
        result = yield process
        return (result, sim.now)

    assert sim.run_process(parent()) == ("child-result", 3.0)


def test_join_reraises_child_failure():
    sim = Simulator()

    def child():
        yield Timeout(1.0)
        raise KeyError("child-failure")

    def parent():
        process = sim.spawn(child())
        yield process

    with pytest.raises(KeyError, match="child-failure"):
        sim.run_process(parent())


def test_join_already_terminated_child():
    sim = Simulator()

    def child():
        yield Timeout(1.0)
        return 9

    def parent():
        process = sim.spawn(child())
        yield Timeout(5.0)
        result = yield process
        return result

    assert sim.run_process(parent()) == 9


def test_all_of_joins_everything():
    sim = Simulator()

    def child(duration, value):
        yield Timeout(duration)
        return value

    def parent():
        procs = [sim.spawn(child(d, d * 10)) for d in (3.0, 1.0, 2.0)]
        results = yield from all_of(sim, procs)
        return results

    assert sim.run_process(parent()) == [30.0, 10.0, 20.0]
    assert sim.now == 3.0


def test_interrupt_raises_in_waiting_process():
    sim = Simulator()
    caught = []

    def victim():
        try:
            yield Timeout(100.0)
        except ProcessInterrupted as exc:
            caught.append(exc.cause)
        return "recovered"

    process = sim.spawn(victim())
    sim.schedule(2.0, process.interrupt, "reason")
    sim.run()
    assert caught == ["reason"]
    assert process.result == "recovered"
    assert sim.now == 2.0


def test_interrupt_dead_process_is_noop():
    sim = Simulator()

    def quick():
        yield Timeout(1.0)

    process = sim.spawn(quick())
    sim.run()
    process.interrupt("late")  # must not raise
    sim.run()


def test_kill_terminates_process():
    sim = Simulator()
    reached = []

    def victim():
        yield Timeout(10.0)
        reached.append("after")

    process = sim.spawn(victim())
    sim.schedule(1.0, process.kill)
    sim.run()
    assert reached == []
    assert not process.alive
    assert isinstance(process.exception, ProcessKilled)


def test_kill_is_not_swallowable():
    sim = Simulator()
    reached = []

    def stubborn():
        try:
            yield Timeout(10.0)
        except BaseException:
            reached.append("caught")
            raise
        reached.append("after")

    process = sim.spawn(stubborn())
    sim.schedule(1.0, process.kill)
    sim.run()
    assert not process.alive
    assert "after" not in reached


def test_deadlock_detection_in_run_process():
    sim = Simulator()
    channel = Channel(sim)

    def stuck():
        yield channel.get()

    with pytest.raises(SimulationError, match="never terminated"):
        sim.run_process(stuck())


def test_determinism_same_seed_same_trace():
    def build_and_run(seed):
        sim = Simulator(seed=seed)
        values = []

        def proc():
            for _ in range(10):
                delay = sim.random.uniform(0.0, 2.0)
                yield Timeout(delay)
                values.append(round(sim.now, 9))

        sim.run_process(proc())
        return values

    assert build_and_run(7) == build_and_run(7)
    assert build_and_run(7) != build_and_run(8)
