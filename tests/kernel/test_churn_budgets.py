"""Kernel additions for fleets: per-node overrides, links, churn events."""

import pytest

from repro.kernel import Link, World


# -- per-node cpu_speed / energy_budget ----------------------------------


def test_add_nodes_scalar_cpu_speed_still_works():
    world = World(seed=1)
    world.add_nodes(["a", "b"], cpu_speed=2.0)
    assert world.cluster.node("a").cpu_speed == 2.0
    assert world.cluster.node("b").cpu_speed == 2.0


def test_add_nodes_sequence_and_mapping_overrides():
    world = World(seed=1)
    world.add_nodes(["a", "b"], cpu_speed=[1.0, 2.0])
    assert world.cluster.node("b").cpu_speed == 2.0
    world.add_nodes(["c", "d"], cpu_speed={"d": 3.0},
                    energy_budget={"c": 100.0})
    assert world.cluster.node("c").cpu_speed == 1.0  # default preserved
    assert world.cluster.node("d").cpu_speed == 3.0
    assert world.cluster.node("c").energy_budget == 100.0
    assert world.cluster.node("d").energy_budget is None


def test_add_nodes_rejects_bad_overrides():
    world = World(seed=1)
    with pytest.raises(ValueError):
        world.add_nodes(["a", "b"], cpu_speed=[1.0])  # wrong length
    with pytest.raises(ValueError):
        world.add_nodes(["c"], cpu_speed={"zz": 2.0})  # unknown node


def test_energy_budget_accounting():
    world = World(seed=1)
    world.add_nodes(["a"], energy_budget=10.0)
    node = world.cluster.node("a")
    assert node.energy_remaining == 10.0
    assert not node.energy_exhausted
    node.energy = 10.5  # spent past the budget
    assert node.energy_remaining == 0.0
    assert node.energy_exhausted
    with pytest.raises(ValueError):
        world.add_node("bad", energy_budget=0.0)


# -- per-link characteristics -------------------------------------------


def test_configure_links_sets_characteristics_in_one_trace_record():
    world = World(seed=2)
    world.add_nodes(["a", "b", "c"])
    world.network.configure_links({
        ("a", "b"): Link(latency=2.0, bandwidth=100.0),
        ("b", "c"): Link(latency=0.1, bandwidth=9_000.0, loss=0.5),
    })
    assert world.network.link("a", "b").latency == 2.0
    assert world.network.link("b", "c").loss == 0.5
    assert world.trace.count("network", "links_configured") == 1


# -- deterministic churn events -----------------------------------------


def test_scheduled_churn_fires_and_counts():
    world = World(seed=3)
    world.add_nodes(["a"])
    node = world.cluster.node("a")
    world.faults.schedule_node_down(node, at=100.0)
    world.faults.schedule_node_up(node, at=250.0)
    world.sim.run(until=99.0)
    assert node.is_up
    world.sim.run(until=101.0)
    assert not node.is_up
    world.sim.run(until=251.0)
    assert node.is_up
    assert world.faults.churn_events == {"node_down": 1, "node_up": 1}


def test_churn_is_idempotent_on_already_transitioned_nodes():
    world = World(seed=3)
    world.add_nodes(["a"])
    node = world.cluster.node("a")
    world.faults.schedule_node_up(node, at=10.0)  # already up: no-op
    world.faults.schedule_node_down(node, at=20.0)
    world.faults.schedule_node_down(node, at=30.0)  # already down: no-op
    world.sim.run(until=50.0)
    assert not node.is_up
    assert world.faults.churn_events == {"node_down": 1, "node_up": 0}
    assert world.trace.count("fault", "node_down") == 1
    assert world.trace.count("fault", "node_up") == 0
