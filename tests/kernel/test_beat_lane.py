"""The heartbeat express lane: fault parity with the general send path.

A :class:`BeatLane` preallocates everything ``Network.send`` resolves
per call, but it must remain an optimisation, never a semantics change:
crash and omission drops, partition blocks, limp-factor link delays and
delivery filters have to hit express beats exactly as they hit plain
sends — same RNG draws, same counters, same trace bytes.  Each test
here runs the identical beat workload through the express lane and the
``_LegacyBeatLane`` shim (which routes through ``Network.send``) and
asserts the observable behaviour is byte-identical.
"""

import pytest

from repro.kernel import World
from repro.kernel import network as netmod
from repro.kernel.errors import NodeDown


@pytest.fixture
def express_toggle():
    """Restore the module toggle after a test flips it."""
    yield netmod.set_beat_express
    netmod.set_beat_express(True)


def _beat_world(seed=13):
    world = World(seed=seed)
    world.add_nodes(["alpha", "beta"])
    return world


def _run_beats(express, seed=13, count=40, period=20.0, mutate=None):
    """Drive ``count`` beats alpha->beta; returns (world, arrival times)."""
    netmod.set_beat_express(express)
    try:
        world = _beat_world(seed)
        arrivals = []
        mailbox = world.network.bind("beta", "fd")
        mailbox.set_sink(lambda _msg: arrivals.append(world.sim.now))
        lane = world.network.beat_lane(
            "alpha", "beta", "fd", ("heartbeat", "alpha"), 32
        )
        sent = [0]

        def beat():
            if mutate is not None:
                mutate(world, sent[0])
            sent[0] += 1
            if sent[0] <= count:
                lane.send()
            else:
                ticker.kill()

        ticker = world.cluster.node("alpha").every(period, beat)
        world.sim.run()
        return world, arrivals
    finally:
        netmod.set_beat_express(True)


def _parity(mutate=None, seed=13):
    fast_world, fast_arrivals = _run_beats(True, seed=seed, mutate=mutate)
    slow_world, slow_arrivals = _run_beats(False, seed=seed, mutate=mutate)
    assert fast_arrivals == slow_arrivals
    assert fast_world.trace.digest() == slow_world.trace.digest()
    for counter in ("messages_sent", "messages_delivered", "messages_dropped"):
        assert getattr(fast_world.network, counter) == \
            getattr(slow_world.network, counter), counter
    return fast_world, fast_arrivals


def test_express_toggle_selects_lane_class(express_toggle):
    world = _beat_world()
    assert isinstance(
        world.network.beat_lane("alpha", "beta", "fd", "hb", 32),
        netmod.BeatLane,
    )
    express_toggle(False)
    assert not netmod.beat_express_enabled()
    assert isinstance(
        world.network.beat_lane("alpha", "beta", "fd", "hb", 32),
        netmod._LegacyBeatLane,
    )


def test_clean_run_is_byte_identical_and_delivers_every_beat():
    world, arrivals = _parity()
    assert len(arrivals) == 40
    assert world.network.messages_dropped == 0


def test_crashed_destination_drops_beats_identically():
    def mutate(world, beat_index):
        if beat_index == 10:
            world.cluster.node("beta").crash()
        elif beat_index == 25:
            world.cluster.node("beta").restart()

    world, arrivals = _parity(mutate=mutate)
    drops = world.trace.select("network", "drop")
    assert drops and all(
        rec.detail("reason") == "destination_down" for rec in drops
    )
    # the mailbox (and its sink) survives the crash in this harness, so
    # delivery resumes as soon as the node is back
    assert len(arrivals) == 40 - len(drops)


def test_crashed_source_raises_node_down():
    world = _beat_world()
    lane = world.network.beat_lane("alpha", "beta", "fd", "hb", 32)
    world.cluster.node("alpha").crash()
    with pytest.raises(NodeDown):
        lane.send()


def test_omission_loss_drops_the_same_beats():
    def mutate(world, beat_index):
        if beat_index == 5:
            world.network.set_link_loss("alpha", "beta", 0.4)

    world, arrivals = _parity(mutate=mutate)
    drops = world.trace.select("network", "drop")
    assert drops and all(rec.detail("reason") == "loss" for rec in drops)
    assert 0 < len(arrivals) < 40


def test_partition_blocks_express_beats_identically():
    def mutate(world, beat_index):
        if beat_index == 8:
            world.network.partition(["alpha"], ["beta"])
        elif beat_index == 16:
            world.network.heal()

    world, arrivals = _parity(mutate=mutate)
    reasons = {r.detail("reason") for r in world.trace.select("network", "drop")}
    assert reasons == {"partition"}


def test_slow_link_delays_express_beats_identically():
    # a x8 limp installed mid-run must stretch express beat delivery
    # exactly as it stretches plain sends: apply_slow mutates the Link
    # the lane aliases, so no re-resolution is needed
    def mutate(world, beat_index):
        if beat_index == 20:
            world.faults.apply_slow(
                world.cluster.node("beta"), "link", 8.0
            )

    world, arrivals = _parity(mutate=mutate)
    healthy_delay = arrivals[5] - 20.0 * 5  # send instant -> delivery
    limped_delay = arrivals[21] - 20.0 * 21  # first beat after the limp
    assert limped_delay > 4 * healthy_delay


def test_delivery_filters_still_apply_to_express_beats():
    # the filter fallback hands a private copy through Network._deliver,
    # so corruption hooks observe express beats like any other message
    def mutate(world, beat_index):
        if beat_index == 0:
            world.network.add_delivery_filter(
                lambda msg: None if msg.port == "fd" and
                world.sim.now > 400.0 else msg
            )

    world, arrivals = _parity(mutate=mutate)
    drops = world.trace.select("network", "drop")
    assert drops and all(rec.detail("reason") == "filtered" for rec in drops)
    assert all(t <= 400.0 + 20.0 for t in arrivals)


def test_beat_lane_attributes_events_to_heartbeat_bucket():
    world, _arrivals = _run_beats(True)
    sources = world.sim.events_by_source
    assert sources["heartbeat"] == 40  # one per delivered-or-dropped send
    assert sources["timer"] >= 40  # the ticker re-arms


def test_unknown_endpoints_are_rejected_eagerly():
    world = _beat_world()
    with pytest.raises(KeyError):
        world.network.beat_lane("nope", "beta", "fd", "hb", 32)
    with pytest.raises(KeyError):
        world.network.beat_lane("alpha", "nope", "fd", "hb", 32)
