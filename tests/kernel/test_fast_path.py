"""The two-lane event loop: fast/legacy parity and lazy-cancel bounds.

The fast path (ready deque for zero-delay events, lazy-cancel heap for
timed ones) is an optimisation, never a semantics change.  These tests
pin that claim: identical workloads replay in identical order under
``fast_path=True`` and ``fast_path=False``, a full seeded mission is
byte-identical across the two kernels, and mass timer cancellation can
no longer grow the heap without bound.
"""

import json
from dataclasses import asdict

import pytest

from repro.kernel import SimulationError, Simulator, Timeout


def _nop():
    pass


def _record(log, sim, tag):
    log.append((sim.now, tag))


def _mixed_workload(sim, log):
    """Every scheduling lane at once: timed, zero-delay, post, call_later,
    nested scheduling from callbacks, and a cancellation."""
    sim.schedule(5.0, _record, log, sim, "timed-5")
    sim.schedule(0.0, _record, log, sim, "zero-a")
    sim.post(_record, log, sim, "post-a")
    sim.call_later(5.0, _record, log, sim, "later-5")
    sim.call_later(0.0, _record, log, sim, "later-0")
    sim.schedule(2.0, _record, log, sim, "timed-2")
    doomed = sim.schedule(3.0, _record, log, sim, "cancelled")
    doomed.cancel()

    def nested():
        log.append((sim.now, "nested"))
        sim.post(_record, log, sim, "nested-post")
        sim.schedule(1.0, _record, log, sim, "nested-timed")

    sim.schedule(4.0, nested)
    sim.run()


def test_fast_and_legacy_replay_identical_order():
    fast_log, legacy_log = [], []
    _mixed_workload(Simulator(fast_path=True), fast_log)
    _mixed_workload(Simulator(fast_path=False), legacy_log)
    assert fast_log == legacy_log
    assert fast_log[0][1] in ("zero-a",)  # zero-delay fires before timers


def test_heap_entry_at_now_with_smaller_seq_beats_ready_entry():
    # two timers land on t=5; the first one's callback posts a ready
    # entry, which must still fire *after* the second timer (smaller seq)
    sim = Simulator(fast_path=True)
    order = []

    def first():
        order.append("first")
        sim.post(order.append, "posted")

    sim.schedule(5.0, first)
    sim.schedule(5.0, order.append, "second")
    sim.run()
    assert order == ["first", "second", "posted"]


def test_post_and_zero_schedule_interleave_fifo():
    sim = Simulator()
    order = []
    sim.post(order.append, 0)
    sim.schedule(0.0, order.append, 1)
    sim.post(order.append, 2)
    sim.call_later(0.0, order.append, 3)
    sim.run()
    assert order == [0, 1, 2, 3]


def test_call_later_rejects_negative_delay():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call_later(-0.5, _nop)


def test_cancelled_ready_entry_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(0.0, fired.append, "x")
    handle.cancel()
    sim.run()
    assert fired == []
    assert not handle.active


def test_lazy_cancel_keeps_heap_bounded():
    # the PR-4 regression: 10k schedule+cancel cycles used to leave 10k
    # dead tuples in the heap; compaction must bound it near the floor
    sim = Simulator()
    for _ in range(10_000):
        sim.schedule(1_000.0, _nop).cancel()
    assert len(sim._queue) < 256
    assert sim.pending() == 0
    sim.run()
    assert sim.now == 0.0  # nothing live ever fired


def test_compaction_preserves_live_timers():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(50.0 + i, fired.append, i)
    for _ in range(5_000):
        sim.schedule(10.0, fired.append, "dead").cancel()
    sim.run()
    assert fired == list(range(10))


def test_peek_time_skips_cancelled_heads():
    sim = Simulator()
    head = sim.schedule(1.0, _nop)
    sim.schedule(2.0, _nop)
    head.cancel()
    assert sim.peek_time() == 2.0


def test_peek_time_sees_ready_lane():
    sim = Simulator()
    assert sim.peek_time() is None
    sim.post(_nop)
    assert sim.peek_time() == 0.0


def test_processes_run_identically_on_both_kernels():
    def scenario(sim, log):
        def proc(tag, period):
            for _ in range(3):
                yield Timeout(period)
                log.append((sim.now, tag, sim.random.randint(0, 99)))

        sim.spawn(proc("a", 1.5))
        sim.spawn(proc("b", 1.0))
        sim.run()

    fast_log, legacy_log = [], []
    scenario(Simulator(seed=9, fast_path=True), fast_log)
    scenario(Simulator(seed=9, fast_path=False), legacy_log)
    assert fast_log == legacy_log


def test_mission_is_byte_identical_fast_vs_legacy(monkeypatch):
    # the satellite acceptance check: one full seeded campaign mission
    # through the real protocol stack, fast path vs legacy single heap
    from repro.eval import campaign

    fast = asdict(campaign.run_mission(seed=77, requests=8))
    monkeypatch.setattr(Simulator, "DEFAULT_FAST_PATH", False)
    legacy = asdict(campaign.run_mission(seed=77, requests=8))
    assert json.dumps(fast, sort_keys=True) == json.dumps(legacy, sort_keys=True)
