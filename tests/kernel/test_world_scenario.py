"""Tests for :meth:`World.run_scenario` — the experiment setup helper."""

from repro.kernel.sim import Timeout
from repro.kernel.world import World


def test_run_scenario_creates_nodes_then_drives_generator():
    world = World(seed=1)

    def scenario(w):
        assert w.cluster.node("alpha") is not None
        assert w.cluster.node("beta") is not None
        yield Timeout(2.5)
        return round(w.now, 9)

    result = world.run_scenario(scenario, nodes=("alpha", "beta"))
    assert result == 2.5


def test_run_scenario_accepts_a_ready_generator():
    world = World(seed=1)

    def scenario():
        yield Timeout(1.0)
        return "done"

    assert world.run_scenario(scenario()) == "done"
    assert world.now == 1.0


def test_run_scenario_is_equivalent_to_manual_boilerplate():
    def measure(w):
        yield Timeout(0.5)
        return w.sim.random.random()

    manual = World(seed=9)
    manual.add_nodes(["alpha"])
    expected = manual.run_process(measure(manual), name="scenario")

    helper = World(seed=9)
    assert helper.run_scenario(measure, nodes=("alpha",)) == expected
