"""Tests for the gray-failure (slow) fault models in the kernel.

A limp is *slow, not dead*: the node stays up, so nothing but timing
changes.  The invariants here are exact-revert (speeds return to the
byte-identical originals — no float drift), idempotent revert closures,
composability with other slowdowns, and the argument validation the
injector promises.
"""

import pytest

from repro.kernel import Timeout, World
from repro.kernel.faults import SLOW_RESOURCES, FaultKind


def make_world(seed=7):
    world = World(seed=seed)
    world.add_nodes(["alpha", "beta"])
    return world


# -- apply_slow: exact, revertible, composable -----------------------------------


def test_apply_slow_cpu_divides_and_reverts_exactly():
    world = make_world()
    node = world.cluster.node("alpha")
    revert = world.faults.apply_slow(node, "cpu", 4.0)
    assert node.cpu_speed == 0.25
    revert()
    assert node.cpu_speed == 1.0  # byte-exact, not approximately


def test_apply_slow_disk_divides_and_reverts_exactly():
    world = make_world()
    node = world.cluster.node("alpha")
    revert = world.faults.apply_slow(node, "disk", 8.0)
    assert node.disk_speed == 0.125
    revert()
    assert node.disk_speed == 1.0


def test_apply_slow_link_touches_both_directions():
    world = make_world()
    node = world.cluster.node("alpha")
    out_link = world.network.link("alpha", "beta")
    in_link = world.network.link("beta", "alpha")
    latency, bandwidth = out_link.latency, out_link.bandwidth
    revert = world.faults.apply_slow(node, "link", 8.0)
    for link in (out_link, in_link):
        assert link.latency == latency * 8.0
        assert link.bandwidth == bandwidth / 8.0
    revert()
    for link in (out_link, in_link):
        assert link.latency == latency
        assert link.bandwidth == bandwidth


def test_revert_is_idempotent():
    world = make_world()
    node = world.cluster.node("alpha")
    revert = world.faults.apply_slow(node, "cpu", 4.0)
    revert()
    revert()  # second call must not over-correct
    assert node.cpu_speed == 1.0


def test_slowdowns_compose_and_unwind_in_any_order():
    world = make_world()
    node = world.cluster.node("alpha")
    first = world.faults.apply_slow(node, "cpu", 2.0)
    second = world.faults.apply_slow(node, "cpu", 4.0)
    assert node.cpu_speed == 0.125
    first()
    assert node.cpu_speed == 0.25
    second()
    assert node.cpu_speed == 1.0


def test_apply_slow_counts_and_traces():
    world = make_world()
    node = world.cluster.node("alpha")
    revert = world.faults.apply_slow(node, "disk", 2.0)
    revert()
    assert world.faults.injected_counts[FaultKind.SLOW] == 1
    assert world.trace.count("fault", "slow_applied") == 1
    assert world.trace.count("fault", "slow_reverted") == 1


# -- arm_slow: scheduled limp windows ----------------------------------------------


def test_arm_slow_window_applies_and_reverts_on_schedule():
    world = make_world()
    node = world.cluster.node("alpha")
    world.faults.arm_slow(node, "cpu", 8.0, start=100.0, duration=200.0)
    observed = {}

    def probe():
        yield Timeout(50.0)
        observed["before"] = node.cpu_speed   # t=50: not yet
        yield Timeout(100.0)
        observed["during"] = node.cpu_speed   # t=150: limping
        yield Timeout(200.0)
        observed["after"] = node.cpu_speed    # t=350: reverted

    world.run_process(probe(), name="probe")
    assert observed == {"before": 1.0, "during": 0.125, "after": 1.0}


def test_arm_slow_without_duration_limps_forever():
    world = make_world()
    node = world.cluster.node("alpha")
    world.faults.arm_slow(node, "cpu", 2.0, start=0.0)

    def probe():
        yield Timeout(10_000.0)
        return node.cpu_speed

    assert world.run_process(probe(), name="probe") == 0.5
    assert node.is_up  # slow, not dead


def test_arm_slow_is_deterministic_across_runs():
    def trace_of():
        world = make_world()
        world.faults.arm_slow(
            world.cluster.node("alpha"), "link", 4.0,
            start=50.0, duration=100.0,
        )

        def wait():
            yield Timeout(500.0)

        world.run_process(wait(), name="wait")
        return [
            (r.time, r.category, r.event, r.details)
            for r in world.trace.records
        ]

    assert trace_of() == trace_of()


def test_schedule_node_limp_counts_churn_and_keeps_node_up():
    world = make_world()
    node = world.cluster.node("alpha")
    world.faults.schedule_node_limp(node, "disk", 4.0, at=100.0,
                                    duration=200.0)

    def wait():
        yield Timeout(500.0)

    world.run_process(wait(), name="wait")
    assert world.faults.churn_events.get("node_limp") == 1
    assert world.trace.count("fault", "node_limp") == 1
    assert node.is_up
    assert node.disk_speed == 1.0  # window closed, reverted


def test_churn_events_has_no_limp_key_until_first_limp():
    world = make_world()
    assert "node_limp" not in world.faults.churn_events


# -- validation (satellite: argument validation across the injector) ---------------


@pytest.mark.parametrize("resource", ["gpu", "", "network"])
def test_slow_rejects_unknown_resource(resource):
    world = make_world()
    node = world.cluster.node("alpha")
    with pytest.raises(ValueError, match="unknown slow resource"):
        world.faults.apply_slow(node, resource, 2.0)
    with pytest.raises(ValueError, match="unknown slow resource"):
        world.faults.arm_slow(node, resource, 2.0)


@pytest.mark.parametrize("factor", [0.5, 0.0, -3.0, float("nan")])
def test_slow_rejects_sub_unity_factor(factor):
    world = make_world()
    node = world.cluster.node("alpha")
    with pytest.raises(ValueError, match="factor must be >= 1"):
        world.faults.apply_slow(node, "cpu", factor)


def test_arm_slow_rejects_negative_duration():
    world = make_world()
    node = world.cluster.node("alpha")
    with pytest.raises(ValueError, match="duration must be >= 0"):
        world.faults.arm_slow(node, "cpu", 2.0, duration=-1.0)


@pytest.mark.parametrize("probability", [-0.1, 1.5])
def test_arm_transient_rejects_bad_probability(probability):
    world = make_world()
    with pytest.raises(ValueError, match="probability"):
        world.faults.arm_transient("alpha", probability=probability)


def test_arm_transient_rejects_window_ending_before_start():
    world = make_world()
    with pytest.raises(ValueError, match="end"):
        world.faults.arm_transient("alpha", probability=0.5,
                                   start=100.0, end=50.0)


@pytest.mark.parametrize("probability", [-0.1, 1.5])
def test_omission_rates_reject_bad_probability(probability):
    world = make_world()
    with pytest.raises(ValueError, match="probability"):
        world.faults.set_omission_rate(world.network, probability)
    with pytest.raises(ValueError, match="probability"):
        world.faults.set_link_omission_rate(
            world.network, "alpha", "beta", probability
        )


def test_arm_transition_fault_validates_slow_resource():
    world = make_world()
    with pytest.raises(ValueError, match="unknown slow resource"):
        world.faults.arm_transition_fault("script", "slow", node="alpha",
                                          resource="gpu")


def test_slow_resources_vocabulary_is_stable():
    assert SLOW_RESOURCES == ("cpu", "link", "disk")
