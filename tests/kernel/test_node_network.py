"""Unit tests for nodes, network, fault injection and stable storage."""

import pytest

from repro.kernel import (
    Corrupted,
    FaultKind,
    NodeDown,
    NodeState,
    ProcessKilled,
    Timeout,
    World,
    bit_flip,
)


@pytest.fixture
def world():
    return World(seed=1)


@pytest.fixture
def pair(world):
    return world.add_node("alpha"), world.add_node("beta")


# -- nodes ---------------------------------------------------------------------


def test_node_compute_advances_time_and_charges_energy(world):
    node = world.add_node("alpha")

    def proc():
        yield from node.compute(10.0, jitter=False)

    world.run_process(proc())
    assert world.now == pytest.approx(10.0)
    assert node.busy_ms == pytest.approx(10.0)
    assert node.energy == pytest.approx(10.0 * world.costs.energy_per_ms_busy)


def test_faster_cpu_computes_quicker(world):
    fast = world.add_node("fast", cpu_speed=2.0)

    def proc():
        yield from fast.compute(10.0, jitter=False)

    world.run_process(proc())
    assert world.now == pytest.approx(5.0)


def test_node_rejects_nonpositive_speed(world):
    with pytest.raises(ValueError):
        world.add_node("bad", cpu_speed=0.0)


def test_duplicate_node_name_rejected(world):
    world.add_node("alpha")
    with pytest.raises(ValueError):
        world.add_node("alpha")


def test_crash_kills_node_processes(world):
    node = world.add_node("alpha")
    reached = []

    def proc():
        yield Timeout(100.0)
        reached.append("done")

    process = node.spawn(proc())
    node.schedule_crash(5.0)
    world.run()
    assert reached == []
    assert isinstance(process.exception, ProcessKilled)
    assert node.state == NodeState.CRASHED


def test_crashed_node_refuses_work(world):
    node = world.add_node("alpha")
    node.crash()
    with pytest.raises(NodeDown):
        node.spawn((x for x in []))
    with pytest.raises(NodeDown):
        list(node.compute(1.0))


def test_restart_brings_node_up_with_hooks(world):
    node = world.add_node("alpha")
    seen = []
    node.on_crash(lambda n: seen.append(("crash", n.name)))
    node.on_restart(lambda n: seen.append(("restart", n.name)))
    node.crash()
    node.restart()
    assert seen == [("crash", "alpha"), ("restart", "alpha")]
    assert node.is_up
    assert node.crash_count == 1


def test_crash_is_idempotent(world):
    node = world.add_node("alpha")
    node.crash()
    node.crash()
    assert node.crash_count == 1


# -- network -------------------------------------------------------------------


def test_message_delivery(world, pair):
    alpha, beta = pair
    mailbox = world.network.bind("beta", "in")

    def receiver():
        message = yield mailbox.get()
        return (message.payload, message.source)

    process = world.sim.spawn(receiver())
    world.network.send("alpha", "beta", "in", payload="hello", size=100)
    world.run()
    assert process.result == ("hello", "alpha")


def test_transfer_time_scales_with_size(world, pair):
    # Deliveries carry jitter; large messages must still take visibly longer.
    mailbox = world.network.bind("beta", "in")
    arrivals = []

    def receiver():
        for _ in range(2):
            yield mailbox.get()
            arrivals.append(world.now)

    world.sim.spawn(receiver())
    world.network.send("alpha", "beta", "in", payload="small", size=10)
    world.network.send("alpha", "beta", "in", payload="big", size=1_000_000)
    world.run()
    small_time, big_time = arrivals[0], arrivals[1]
    assert big_time > small_time * 10


def test_send_from_crashed_node_raises(world, pair):
    alpha, _beta = pair
    alpha.crash()
    with pytest.raises(NodeDown):
        world.network.send("alpha", "beta", "in", payload="x")


def test_delivery_to_crashed_node_dropped(world, pair):
    _alpha, beta = pair
    world.network.bind("beta", "in")
    world.network.send("alpha", "beta", "in", payload="x")
    beta.crash()
    world.run()
    assert world.network.messages_dropped == 1
    assert world.network.messages_delivered == 0


def test_partition_blocks_messages_and_heal_restores(world, pair):
    mailbox = world.network.bind("beta", "in")
    world.network.partition(["alpha"], ["beta"])
    world.network.send("alpha", "beta", "in", payload="lost")
    world.run()
    assert len(mailbox) == 0
    world.network.heal()
    world.network.send("alpha", "beta", "in", payload="found")
    world.run()
    assert len(mailbox) == 1


def test_loss_probability_drops_messages(world, pair):
    world.network.bind("beta", "in")
    world.network.set_loss_probability(1.0)
    for _ in range(5):
        world.network.send("alpha", "beta", "in", payload="x")
    world.run()
    assert world.network.messages_dropped == 5


def test_unknown_destination_rejected(world):
    world.add_node("alpha")
    with pytest.raises(KeyError):
        world.network.send("alpha", "ghost", "in", payload="x")


def test_bandwidth_change_at_runtime(world, pair):
    world.network.set_link("alpha", "beta", bandwidth=1.0)
    link = world.network.link("alpha", "beta")
    assert link.bandwidth == 1.0
    # symmetric by default
    assert world.network.link("beta", "alpha").bandwidth == 1.0


def test_byte_accounting(world, pair):
    alpha, beta = pair
    world.network.bind("beta", "in")
    world.network.send("alpha", "beta", "in", payload="x", size=500)
    world.run()
    assert alpha.bytes_sent == 500
    assert beta.bytes_received == 500


def test_delivery_filter_can_transform(world, pair):
    mailbox = world.network.bind("beta", "in")

    def mangle(message):
        return type(message)(
            source=message.source,
            destination=message.destination,
            port=message.port,
            payload="mangled",
            size=message.size,
            sent_at=message.sent_at,
        )

    world.network.add_delivery_filter(mangle)
    world.network.send("alpha", "beta", "in", payload="original")
    world.run()
    assert mailbox.drain()[0].payload == "mangled"


# -- fault injection -------------------------------------------------------------


def test_bit_flip_int_changes_value():
    assert bit_flip(42, 3) != 42


def test_bit_flip_is_detectable_not_destructive():
    for value in [0, 1.5, -2.25, "hello", b"bytes", True, [1, 2], (3, 4)]:
        assert bit_flip(value, 5) != value


def test_bit_flip_unknown_type_wrapped():
    marker = bit_flip({"a": 1}, 2)
    assert isinstance(marker, Corrupted)


def test_transient_campaign_corrupts_within_window(world):
    world.add_node("alpha")
    world.faults.arm_transient("alpha", probability=1.0, start=0.0, end=100.0)
    assert world.faults.filter_value("alpha", 7) != 7
    assert world.faults.injected_counts[FaultKind.TRANSIENT_VALUE] == 1


def test_transient_campaign_respects_budget(world):
    world.add_node("alpha")
    world.faults.arm_transient("alpha", probability=1.0, budget=1)
    assert world.faults.filter_value("alpha", 7) != 7
    assert world.faults.filter_value("alpha", 7) == 7


def test_campaign_does_not_hit_other_nodes(world):
    world.add_node("alpha")
    world.add_node("beta")
    world.faults.arm_transient("alpha", probability=1.0)
    assert world.faults.filter_value("beta", 7) == 7


def test_permanent_campaign_corrupts_forever(world):
    world.add_node("alpha")
    world.faults.arm_permanent("alpha", start=0.0)
    corrupted = [world.faults.filter_value("alpha", 10) for _ in range(5)]
    assert all(value != 10 for value in corrupted)


def test_disarm_stops_campaigns(world):
    world.add_node("alpha")
    world.faults.arm_permanent("alpha")
    world.faults.disarm("alpha")
    assert world.faults.filter_value("alpha", 10) == 10
    assert not world.faults.has_active_campaign("alpha")


def test_scheduled_crash_and_restart(world):
    node = world.add_node("alpha")
    world.faults.schedule_crash(node, at=5.0, restart_after=3.0)
    world.run(until=6.0)
    assert not node.is_up
    world.run()
    assert node.is_up


# -- stable storage ----------------------------------------------------------------


def test_storage_read_write(world):
    world.storage.write("alpha", "config", {"ftm": "pbr"})
    assert world.storage.read("alpha", "config") == {"ftm": "pbr"}
    assert world.storage.read("alpha", "missing", default="d") == "d"


def test_storage_survives_crash(world):
    node = world.add_node("alpha")
    world.storage.write("alpha", "config", "pbr")
    node.crash()
    assert world.storage.read("alpha", "config") == "pbr"


def test_storage_delete_unknown_key(world):
    from repro.kernel import StorageError

    with pytest.raises(StorageError):
        world.storage.delete("alpha", "nope")


def test_storage_log_append_and_last(world):
    world.storage.append("configs", "pbr")
    world.storage.append("configs", "lfr")
    entries = world.storage.log("configs")
    assert [e.value for e in entries] == ["pbr", "lfr"]
    assert world.storage.last("configs").value == "lfr"
    assert world.storage.last("empty") is None


# -- trace ---------------------------------------------------------------------------


def test_trace_records_and_queries(world):
    node = world.add_node("alpha")
    node.crash()
    node.restart()
    assert world.trace.count("node", "crash") == 1
    last = world.trace.last("node")
    assert last.event == "restart"
    assert last.detail("node") == "alpha"


def test_trace_select_by_detail(world):
    world.add_node("alpha").crash()
    world.add_node("beta").crash()
    only_beta = world.trace.select("node", "crash", node="beta")
    assert len(only_beta) == 1


def test_trace_subscribe_live(world):
    seen = []
    world.trace.subscribe(lambda rec: seen.append(rec.event))
    world.add_node("alpha").crash()
    assert "crash" in seen


def test_world_determinism():
    def run(seed):
        world = World(seed=seed)
        world.add_node("alpha")
        world.add_node("beta")
        mailbox = world.network.bind("beta", "in")
        times = []

        def receiver():
            for _ in range(20):
                yield mailbox.get()
                times.append(world.now)

        world.sim.spawn(receiver())
        for index in range(20):
            world.network.send("alpha", "beta", "in", payload=index, size=1000)
        world.run()
        return times

    assert run(3) == run(3)
