"""Unit tests for composites, the input gate, specs/diffs and the runtime."""

import pytest

from repro.components import (
    AssemblySpec,
    ComponentError,
    ComponentImpl,
    ComponentSpec,
    Multiplicity,
    PromotionSpec,
    UnknownComponentError,
    UnknownServiceError,
    WireSpec,
    WiringError,
    make_runtime,
)
from repro.kernel import Timeout, World


class Source(ComponentImpl):
    SERVICES = {"io": ("produce",)}

    def produce(self):
        return self.prop("value", "default")


class Relay(ComponentImpl):
    SERVICES = {"io": ("pull",)}
    REFERENCES = {"upstream": Multiplicity.ONE}

    def pull(self):
        result = yield from self.ref("upstream").invoke("produce")
        return result


def spec_pair(relay_value="v1"):
    return AssemblySpec(
        name="asm",
        components=(
            ComponentSpec.make("src", Source, {"value": relay_value}),
            ComponentSpec.make("relay", Relay),
        ),
        wires=(WireSpec("relay", "upstream", "src", "io"),),
        promotions=(PromotionSpec("front", "relay", "io"),),
    )


@pytest.fixture
def world():
    return World(seed=3)


@pytest.fixture
def runtime(world):
    node = world.add_node("alpha")
    return make_runtime(world, node)


def deploy(world, runtime, spec):
    def do():
        composite = yield from runtime.deploy(spec)
        return composite

    return world.run_process(do(), name="deploy")


# -- deployment ------------------------------------------------------------------


def test_deploy_builds_whole_assembly(world, runtime):
    composite = deploy(world, runtime, spec_pair())
    arch = composite.architecture()
    assert arch["components"] == {"relay": "started", "src": "started"}
    assert arch["wires"] == [("relay", "upstream", "src", "io")]
    assert arch["promotions"] == {"front": ("relay", "io")}


def test_deploy_charges_calibrated_time(world, runtime):
    deploy(world, runtime, spec_pair())
    costs = world.costs
    floor = (
        costs.runtime_boot
        + costs.composite_create
        + 2 * costs.component_install
        + costs.wire_connect
        + 2 * costs.component_start
    )
    # within jitter of the calibrated floor
    assert world.now == pytest.approx(floor, rel=0.15)


def test_deploy_rejects_invalid_spec(world, runtime):
    bad = AssemblySpec(
        name="bad",
        components=(ComponentSpec.make("src", Source),),
        wires=(WireSpec("src", "x", "ghost", "io"),),
    )
    with pytest.raises(ComponentError, match="invalid assembly"):
        deploy(world, runtime, bad)


def test_deploy_requires_wired_required_references(world, runtime):
    # relay has a required reference but no wire -> integrity failure at start
    bad = AssemblySpec(
        name="bad",
        components=(ComponentSpec.make("relay", Relay),),
        wires=(),
    )
    with pytest.raises(Exception, match="integrity"):
        deploy(world, runtime, bad)


def test_promoted_call_goes_through(world, runtime):
    composite = deploy(world, runtime, spec_pair())

    def call():
        result = yield from composite.call("front", "pull")
        return result

    assert world.run_process(call()) == "v1"


def test_unknown_promotion(world, runtime):
    composite = deploy(world, runtime, spec_pair())
    with pytest.raises(UnknownServiceError):
        composite.resolve("nope")


def test_runtime_not_booted_rejects_composites(world):
    node = world.add_node("beta")
    runtime = make_runtime(world, node)
    with pytest.raises(ComponentError, match="not booted"):
        world.run_process(runtime.create_composite("c"))


def test_node_crash_wipes_runtime(world, runtime):
    deploy(world, runtime, spec_pair())
    runtime.node.crash()
    assert not runtime.booted
    assert runtime.composites == {}


# -- the input gate --------------------------------------------------------------


def test_gate_buffers_external_calls(world, runtime):
    composite = deploy(world, runtime, spec_pair())
    composite.close_gate()
    results = []

    def caller():
        result = yield from composite.call("front", "pull")
        results.append((result, world.now))

    world.sim.spawn(caller())
    reopen_at = world.now + 30.0

    def opener():
        yield Timeout(30.0)
        composite.open_gate()

    world.sim.spawn(opener())
    world.run()
    assert results and results[0][0] == "v1"
    assert results[0][1] >= reopen_at
    assert composite.buffered_while_closed == 1


def test_gate_fifo_drain(world, runtime):
    composite = deploy(world, runtime, spec_pair())
    composite.close_gate()
    order = []

    def caller(tag):
        yield from composite.call("front", "pull")
        order.append(tag)

    for tag in ("a", "b", "c"):
        world.sim.spawn(caller(tag))

    def opener():
        yield Timeout(5.0)
        composite.open_gate()

    world.sim.spawn(opener())
    world.run()
    assert order == ["a", "b", "c"]


# -- composite membership rules ----------------------------------------------------


def test_remove_with_incoming_wires_rejected(world, runtime):
    composite = deploy(world, runtime, spec_pair())

    def do():
        yield from runtime.stop_component("asm", "src")
        yield from runtime.remove_component("asm", "src")

    with pytest.raises(WiringError, match="incoming wires"):
        world.run_process(do())


def test_remove_promotion_target_rejected(world, runtime):
    composite = deploy(world, runtime, spec_pair())

    def do():
        yield from runtime.stop_component("asm", "relay")
        yield from runtime.unwire("asm", "relay", "upstream", "src", "io")
        yield from runtime.remove_component("asm", "relay")

    with pytest.raises(WiringError, match="promotions"):
        world.run_process(do())


def test_unknown_component_lookup(world, runtime):
    composite = deploy(world, runtime, spec_pair())
    with pytest.raises(UnknownComponentError):
        composite.component("ghost")


def test_destroy_composite_cleans_up(world, runtime):
    deploy(world, runtime, spec_pair())

    def do():
        yield from runtime.destroy_composite("asm")

    world.run_process(do())
    assert "asm" not in runtime.composites


def test_integrity_violations_detect_unwired_reference(world, runtime):
    composite = deploy(world, runtime, spec_pair())

    def do():
        yield from runtime.unwire("asm", "relay", "upstream", "src", "io")

    world.run_process(do())
    violations = composite.integrity_violations()
    assert any("unwired required reference" in v for v in violations)


# -- spec diffing -----------------------------------------------------------------------


def test_diff_identity():
    diff = spec_pair().diff(spec_pair())
    assert diff.is_identity
    assert diff.touched_component_count == 0


def test_diff_detects_property_change_as_replacement():
    diff = spec_pair("v1").diff(spec_pair("v2"))
    assert not diff.is_identity
    assert len(diff.replaced) == 1
    old, new = diff.replaced[0]
    assert old.name == new.name == "src"
    assert diff.touched_component_count == 1


def test_diff_detects_added_and_removed():
    base = spec_pair()
    extended = AssemblySpec(
        name="asm",
        components=base.components + (ComponentSpec.make("extra", Source),),
        wires=base.wires,
        promotions=base.promotions,
    )
    diff = base.diff(extended)
    assert [c.name for c in diff.added] == ["extra"]
    back = extended.diff(base)
    assert [c.name for c in back.removed] == ["extra"]


def test_diff_wire_changes():
    base = spec_pair()
    rewired = AssemblySpec(
        name="asm",
        components=base.components,
        wires=(),
        promotions=base.promotions,
    )
    diff = base.diff(rewired)
    assert diff.wires_removed == base.wires
    assert diff.wires_added == ()


def test_diff_package_contents():
    diff = spec_pair("v1").diff(spec_pair("v2"))
    names = [c.name for c in diff.new_components()]
    assert names == ["src"]
    assert diff.package_size() == 4096
    assert [c.name for c in diff.dead_components()] == ["src"]


def test_spec_component_lookup():
    spec = spec_pair()
    assert spec.component("src").impl_class is Source
    with pytest.raises(KeyError):
        spec.component("ghost")
    assert spec.component_names() == frozenset({"src", "relay"})
