"""Unit tests for components, services, references, wires and lifecycle."""

import pytest

from repro.components import (
    ComponentImpl,
    LifecycleError,
    LifecycleState,
    Multiplicity,
    UnknownReferenceError,
    UnknownServiceError,
    WiringError,
    connect,
    disconnect,
    make_runtime,
)
from repro.kernel import Timeout, World


class Echo(ComponentImpl):
    SERVICES = {"io": ("echo", "slow_echo", "glacial_echo")}

    def echo(self, value):
        return value

    def slow_echo(self, value):
        yield Timeout(5.0)
        return value

    def glacial_echo(self, value):
        yield Timeout(100.0)
        return value


class Forwarder(ComponentImpl):
    SERVICES = {"io": ("forward",)}
    REFERENCES = {"next": Multiplicity.ONE}

    def forward(self, value):
        result = yield from self.ref("next").invoke("echo", value)
        return result


class FanOut(ComponentImpl):
    SERVICES = {"io": ("fan",)}
    REFERENCES = {"targets": Multiplicity.MANY}

    def fan(self, value):
        results = yield from self.ref("targets").invoke_all("echo", value)
        return results


@pytest.fixture
def setup():
    world = World(seed=2)
    node = world.add_node("alpha")
    runtime = make_runtime(world, node)

    def build():
        yield from runtime.boot()
        yield from runtime.create_composite("c")

    world.run_process(build(), name="build")
    return world, runtime


def _install(world, runtime, name, impl_class, start=True):
    from repro.components import ComponentSpec

    def do():
        component = yield from runtime.install("c", ComponentSpec.make(name, impl_class))
        if start:
            yield from runtime.start_component("c", name)
        return component

    return world.run_process(do(), name=f"install-{name}")


def test_component_call_plain_operation(setup):
    world, runtime = setup
    echo = _install(world, runtime, "echo", Echo)

    def call():
        result = yield from echo.call("io", "echo", 42)
        return result

    assert world.run_process(call()) == 42
    assert echo.invocation_count == 1


def test_component_call_generator_operation_advances_time(setup):
    world, runtime = setup
    echo = _install(world, runtime, "echo", Echo)
    t0 = world.now

    def call():
        result = yield from echo.call("io", "slow_echo", "hi")
        return result

    assert world.run_process(call()) == "hi"
    assert world.now == pytest.approx(t0 + 5.0)


def test_unknown_service_and_operation(setup):
    world, runtime = setup
    echo = _install(world, runtime, "echo", Echo)
    with pytest.raises(UnknownServiceError):
        echo.service("nope")
    with pytest.raises(UnknownServiceError):
        list(echo.call("io", "nope"))
    with pytest.raises(UnknownReferenceError):
        echo.reference("nope")


def test_wire_and_invoke_through_reference(setup):
    world, runtime = setup
    echo = _install(world, runtime, "echo", Echo)
    forwarder = _install(world, runtime, "fwd", Forwarder, start=False)
    connect(forwarder, "next", echo, "io")

    def do():
        yield from runtime.start_component("c", "fwd")
        result = yield from forwarder.call("io", "forward", "ping")
        return result

    assert world.run_process(do()) == "ping"


def test_unwired_required_reference_raises_on_invoke(setup):
    world, runtime = setup
    forwarder = _install(world, runtime, "fwd", Forwarder)

    def do():
        yield from forwarder.call("io", "forward", "ping")

    with pytest.raises(WiringError, match="not wired"):
        world.run_process(do())


def test_single_multiplicity_rejects_second_wire(setup):
    world, runtime = setup
    echo1 = _install(world, runtime, "e1", Echo)
    echo2 = _install(world, runtime, "e2", Echo)
    forwarder = _install(world, runtime, "fwd", Forwarder, start=False)
    connect(forwarder, "next", echo1, "io")
    with pytest.raises(WiringError, match="already wired"):
        connect(forwarder, "next", echo2, "io")


def test_many_multiplicity_fans_out(setup):
    world, runtime = setup
    echo1 = _install(world, runtime, "e1", Echo)
    echo2 = _install(world, runtime, "e2", Echo)
    fan = _install(world, runtime, "fan", FanOut, start=False)
    connect(fan, "targets", echo1, "io")
    connect(fan, "targets", echo2, "io")

    def do():
        yield from runtime.start_component("c", "fan")
        results = yield from fan.call("io", "fan", 7)
        return results

    assert world.run_process(do()) == [7, 7]


def test_disconnect_removes_wire(setup):
    world, runtime = setup
    echo = _install(world, runtime, "echo", Echo)
    forwarder = _install(world, runtime, "fwd", Forwarder, start=False)
    connect(forwarder, "next", echo, "io")
    disconnect(forwarder, "next", echo, "io")
    assert not forwarder.reference("next").wired
    with pytest.raises(WiringError, match="no wire"):
        disconnect(forwarder, "next", echo, "io")


def test_invocation_on_stopped_component_buffers_until_start(setup):
    world, runtime = setup
    echo = _install(world, runtime, "echo", Echo)

    def stop_then_call():
        yield from runtime.stop_component("c", "echo")
        assert echo.state == LifecycleState.STOPPED
        return "stopped"

    world.run_process(stop_then_call())

    results = []

    def caller():
        result = yield from echo.call("io", "echo", "buffered")
        results.append((result, world.now))

    world.sim.spawn(caller())
    restart_at = world.now + 50.0

    def restarter():
        yield Timeout(50.0)
        yield from runtime.start_component("c", "echo")

    world.sim.spawn(restarter())
    world.run()
    assert results and results[0][0] == "buffered"
    assert results[0][1] >= restart_at


def test_stop_waits_for_quiescence(setup):
    world, runtime = setup
    echo = _install(world, runtime, "echo", Echo)
    order = []

    def long_caller():
        result = yield from echo.call("io", "slow_echo", "x")  # takes 5ms
        order.append(("call_done", world.now))
        return result

    def stopper():
        yield Timeout(1.0)  # let the call get in flight
        yield from runtime.stop_component("c", "echo")
        order.append(("stopped", world.now))

    world.sim.spawn(long_caller())
    world.sim.spawn(stopper())
    world.run()
    assert order[0][0] == "call_done"
    assert order[1][0] == "stopped"
    assert order[1][1] >= order[0][1]
    assert echo.state == LifecycleState.STOPPED


def test_start_while_stopping_is_illegal(setup):
    world, runtime = setup
    echo = _install(world, runtime, "echo", Echo)
    failures = []

    def long_caller():
        yield from echo.call("io", "glacial_echo", "x")

    def bad_starter():
        yield Timeout(1.0)
        stop_process = world.sim.spawn(runtime.stop_component("c", "echo"))
        yield Timeout(50.0)
        try:
            echo.start()
        except LifecycleError as exc:
            failures.append(str(exc))
        yield stop_process

    world.sim.spawn(long_caller())
    world.run_process(bad_starter())
    assert failures and "stopping" in failures[0]


def test_removed_component_rejects_everything(setup):
    world, runtime = setup
    echo = _install(world, runtime, "echo", Echo)

    def do():
        yield from runtime.stop_component("c", "echo")
        yield from runtime.remove_component("c", "echo")

    world.run_process(do())
    assert echo.state == LifecycleState.REMOVED
    with pytest.raises(LifecycleError):
        echo.start()

    def call():
        yield from echo.call("io", "echo", 1)

    with pytest.raises(LifecycleError, match="removed"):
        world.run_process(call())


def test_remove_started_component_is_illegal(setup):
    world, runtime = setup
    _install(world, runtime, "echo", Echo)

    def do():
        yield from runtime.remove_component("c", "echo")

    with pytest.raises(LifecycleError):
        world.run_process(do())


def test_remove_with_outgoing_wire_is_illegal(setup):
    world, runtime = setup
    echo = _install(world, runtime, "echo", Echo)
    forwarder = _install(world, runtime, "fwd", Forwarder, start=False)
    connect(forwarder, "next", echo, "io")

    def do():
        yield from runtime.remove_component("c", "fwd")

    with pytest.raises(WiringError, match="outgoing wires"):
        world.run_process(do())


def test_properties_roundtrip(setup):
    world, runtime = setup
    echo = _install(world, runtime, "echo", Echo)
    echo.set_property("threshold", 3)
    assert echo.get_property("threshold") == 3
    assert echo.get_property("missing", default="d") == "d"
    assert echo.implementation.prop("threshold") == 3
