"""Tests for on-line architecture exploration."""

import pytest

from repro.components import LifecycleState
from repro.components.introspect import (
    components_in_state,
    dependencies_of,
    dependents_of,
    describe,
    find_by_implementation,
    invocation_counts,
    orphans,
    reachable_from,
)
from repro.ftm import deploy_ftm_pair, Client
from repro.kernel import World


@pytest.fixture
def deployed():
    world = World(seed=110)
    world.add_nodes(["alpha", "beta", "client"])

    def do():
        pair = yield from deploy_ftm_pair(world, "pbr", ["alpha", "beta"])
        return pair

    pair = world.run_process(do(), name="deploy")
    return world, pair, pair.replicas[0].composite


def test_components_in_state(deployed):
    _world, _pair, composite = deployed
    started = components_in_state(composite, LifecycleState.STARTED)
    assert len(started) == 7
    assert components_in_state(composite, LifecycleState.STOPPED) == []


def test_find_by_implementation(deployed):
    _world, _pair, composite = deployed
    found = find_by_implementation(composite, "PbrSyncAfter")
    assert [c.name for c in found] == ["syncAfter"]
    assert find_by_implementation(composite, "Nothing") == []


def test_dependencies_and_dependents(deployed):
    _world, _pair, composite = deployed
    assert dependencies_of(composite, "protocol") == {
        "syncBefore", "proceed", "syncAfter", "replyLog", "server",
    }
    assert "protocol" in dependents_of(composite, "proceed")
    assert "syncBefore" in dependents_of(composite, "proceed")


def test_reachable_from_protocol_covers_everything_but_fd(deployed):
    _world, _pair, composite = deployed
    reachable = reachable_from(composite, "protocol")
    assert reachable == {"syncBefore", "proceed", "syncAfter", "replyLog", "server"}
    # the failure detector reaches the protocol, hence everything
    assert "server" in reachable_from(composite, "failureDetector")


def test_no_orphans_in_a_healthy_ftm(deployed):
    _world, _pair, composite = deployed
    assert orphans(composite) == []


def test_no_orphans_after_a_transition(deployed):
    world, pair, composite = deployed
    from repro.core import AdaptationEngine

    engine = AdaptationEngine(world, pair)

    def do():
        yield from engine.transition("lfr+tr")

    world.run_process(do(), name="transition")
    # the differential transition left no residual bricks behind
    assert orphans(composite) == []
    assert len(composite.components) == 7


def test_invocation_counts_accumulate(deployed):
    world, pair, composite = deployed
    client = Client(world, world.cluster.node("client"), "c1", pair.node_names())

    def do():
        for _ in range(3):
            yield from client.request(("add", 1))

    world.run_process(do(), name="load")
    counts = invocation_counts(composite)
    assert counts["protocol"] >= 3
    assert counts["server"] >= 3


def test_describe_report(deployed):
    _world, _pair, composite = deployed
    report = describe(composite)
    assert "composite 'ftm'" in report
    assert "7 components" in report
    assert "[started  ] protocol" in report
    assert ".before -> syncBefore.sync" in report
    assert "service 'request' => protocol.request" in report
    assert "ORPHANS" not in report
