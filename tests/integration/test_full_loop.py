"""End-to-end integration tests combining every layer of the system."""


from repro.app.workloads import bursty, constant
from repro.core import (
    AdaptationEngine,
    MonitoringEngine,
    ResilienceManager,
    SystemManager,
)
from repro.core.transition_graph import _ctx
from repro.ftm import Client, deploy_ftm_pair
from repro.kernel import Timeout, World


def build(seed=80, ftm="pbr", assertion="always-true"):
    world = World(seed=seed)
    world.add_nodes(["alpha", "beta", "client"])

    def do():
        pair = yield from deploy_ftm_pair(
            world, ftm, ["alpha", "beta"], assertion=assertion
        )
        return pair

    pair = world.run_process(do(), name="deploy")
    client = Client(
        world, world.cluster.node("client"), "c1", pair.node_names(),
        timeout=5_000.0, max_attempts=10,
    )
    return world, pair, client


def test_transition_under_steady_load_loses_nothing():
    world, pair, client = build()
    engine = AdaptationEngine(world, pair)
    results = {}

    def load():
        result = yield from constant(world, client, count=30, period_ms=40.0)
        results["load"] = result

    loader = world.sim.spawn(load())

    def adapt():
        yield Timeout(300.0)
        yield from engine.transition("lfr")
        yield Timeout(200.0)
        yield from engine.transition("lfr+tr")
        yield loader

    world.run_process(adapt(), name="adapt")
    result = results["load"]
    assert result.all_ok
    assert result.replies[-1].value == 30  # exactly-once effects throughout
    assert pair.ftm == "lfr+tr"


def test_crash_during_transition_under_load():
    """The hardest combined case: crash + transition + traffic at once."""
    world, pair, client = build(seed=81)
    pair.enable_recovery(restart_delay=400.0)
    engine = AdaptationEngine(world, pair)
    results = {}

    def load():
        result = yield from constant(world, client, count=25, period_ms=80.0)
        results["load"] = result

    loader = world.sim.spawn(load())

    def chaos():
        yield Timeout(200.0)
        # the slave's reconfiguration script is tampered: it will be killed
        # mid-transition, the survivor completes, recovery reintegrates
        yield from engine.transition("lfr", inject_script_failure_on="beta")
        yield loader
        yield Timeout(8_000.0)  # reintegration window

    world.run_process(chaos(), name="chaos")
    result = results["load"]
    assert result.all_ok
    assert result.replies[-1].value == 25
    assert pair.ftm == "lfr"
    beta = pair.replica_on("beta")
    assert beta.alive and beta.role() == "slave"


def test_value_faults_masked_across_a_transition():
    world, pair, client = build(seed=82, ftm="pbr+tr", assertion="counter-range")
    engine = AdaptationEngine(world, pair)
    # one guaranteed transient fault before the transition...
    world.faults.arm_transient("alpha", probability=1.0, budget=1)
    results = {}

    def load():
        result = yield from constant(world, client, count=20, period_ms=60.0)
        results["load"] = result

    loader = world.sim.spawn(load())

    def adapt():
        yield Timeout(400.0)
        yield from engine.transition("lfr+tr")
        # ... and one after it (TR must keep masking under the new FTM)
        world.faults.arm_transient("alpha", probability=1.0, budget=1)
        yield loader

    world.run_process(adapt(), name="adapt")
    result = results["load"]
    assert result.all_ok
    assert result.replies[-1].value == 20  # every fault masked, before & after
    assert world.trace.count("ftm", "tr_masked") >= 2


def test_closed_loop_mission_with_multiple_triggers():
    """Monitoring -> triggers -> resilience -> transitions, end to end."""
    world, pair, client = build(seed=83)
    engine = AdaptationEngine(world, pair)
    monitoring = MonitoringEngine(world, ["alpha", "beta"])
    manager = SystemManager(auto_approve=True)
    resilience = ResilienceManager(
        world, engine, monitoring, _ctx(), system_manager=manager
    )
    monitoring.start()
    resilience.start()

    def mission():
        yield from constant(world, client, count=5, period_ms=30.0)
        # R: the link degrades -> mandatory PBR -> LFR
        world.network.set_link("alpha", "beta", bandwidth=500.0)
        yield Timeout(4_000.0)
        assert pair.ftm == "lfr"
        # FT: aging hardware -> proactive LFR -> LFR+TR
        resilience.notify_event("hardware-aging")
        yield Timeout(3_000.0)
        assert pair.ftm == "lfr+tr"
        # traffic still flows, exactly-once preserved
        result = yield from constant(world, client, count=5, period_ms=30.0)
        return result

    result = world.run_process(mission(), name="mission")
    assert result.all_ok
    assert result.replies[-1].value == 10
    executed = [d for d in resilience.decisions if d["executed"]]
    assert len(executed) == 2


def test_bursty_load_buffered_by_gate():
    world, pair, client = build(seed=84)
    engine = AdaptationEngine(world, pair)
    results = {}

    def load():
        result = yield from bursty(
            world, client, bursts=6, burst_size=4, gap_ms=250.0
        )
        results["load"] = result

    loader = world.sim.spawn(load())

    def adapt():
        yield Timeout(500.0)
        yield from engine.transition("a+pbr")
        yield loader

    world.run_process(adapt(), name="adapt")
    assert results["load"].all_ok
    assert results["load"].replies[-1].value == 24


def test_double_transition_round_trip_restores_architecture():
    world, pair, client = build(seed=85)
    engine = AdaptationEngine(world, pair)
    before = {
        replica.node.name: replica.composite.architecture()
        for replica in pair.replicas
    }

    def round_trip():
        yield from engine.transition("lfr+tr")
        yield from engine.transition("pbr")

    world.run_process(round_trip(), name="round-trip")
    after = {
        replica.node.name: replica.composite.architecture()
        for replica in pair.replicas
    }
    assert before == after  # architecturally back to the initial FTM

    reply = world.run_process(client.request(("add", 9)), name="check")
    assert reply.ok and reply.value == 9
