"""Placement policies: host-exclusive replicas, policy semantics."""

import pytest

from repro.fleet import (
    POLICIES,
    AppSpec,
    PlacementError,
    line_fleet,
    policy,
    random_fleet,
)
from repro.fleet.topology import Topology


def _apps(count, ftm="pbr"):
    return [AppSpec(f"app{i:02d}", ftm=ftm) for i in range(count)]


def test_appspec_rejects_unknown_ftm():
    with pytest.raises(Exception):
        AppSpec("x", ftm="not-an-ftm")


def test_policy_lookup():
    assert policy("round-robin").name == "round-robin"
    with pytest.raises(PlacementError):
        policy("nope")


@pytest.mark.parametrize("name", sorted(POLICIES))
def test_replicas_are_never_colocated(name):
    topo = random_fleet(10, seed=2)
    assignments = policy(name).place(topo, _apps(4))
    used = [host for a in assignments for host in a.nodes]
    assert len(used) == len(set(used)), f"{name} co-located replicas"
    assert [a.app for a in assignments] == [s.name for s in _apps(4)]


def test_place_rejects_overfull_fleet():
    topo = line_fleet(5)
    with pytest.raises(PlacementError):
        policy("round-robin").place(topo, _apps(3))  # needs 6 hosts


def test_round_robin_walks_hosts_in_order():
    topo = line_fleet(6)
    assignments = policy("round-robin").place(topo, _apps(2))
    assert assignments[0].nodes == ("h000", "h001")
    assert assignments[1].nodes == ("h002", "h003")
    # leftover hosts serve the clients
    assert {a.client for a in assignments} <= {"h004", "h005"}


def test_greedy_gives_fast_hosts_to_cpu_hungry_ftms():
    topo = Topology()
    for name, speed in [("slow1", 0.5), ("slow2", 0.6),
                        ("fast1", 2.0), ("fast2", 1.8)]:
        topo.add_host(name, cpu_speed=speed)
    topo.connect("slow1", "slow2")
    topo.connect("slow2", "fast1")
    topo.connect("fast1", "fast2")
    # lfr is CPU-high, pbr is CPU-low: lfr must land on the fast hosts
    assignments = policy("greedy").place(
        topo, [AppSpec("light", ftm="pbr"), AppSpec("heavy", ftm="lfr")]
    )
    by_app = {a.app: a for a in assignments}
    assert set(by_app["heavy"].nodes) == {"fast1", "fast2"}
    assert set(by_app["light"].nodes) == {"slow1", "slow2"}


def test_affinity_picks_the_lowest_latency_pair():
    topo = Topology()
    for name in ("a", "b", "c", "d"):
        topo.add_host(name)
    topo.connect("a", "b", latency=5.0)
    topo.connect("b", "c", latency=0.1)
    topo.connect("c", "d", latency=5.0)
    assignments = policy("affinity").place(topo, _apps(1))
    assert set(assignments[0].nodes) == {"b", "c"}
