"""Population workloads and deterministic churn schedules."""

import pytest

from repro.fleet import (
    AppSpec,
    Assignment,
    Population,
    apply_churn,
    churn_schedule,
    policy,
)
from repro.fleet.topology import line_fleet
from repro.ftm import deploy_ftm_pair
from repro.kernel import Timeout, World


def test_churn_schedule_is_seed_deterministic_and_sorted():
    hosts = ["h000", "h001", "h002"]
    first = churn_schedule(hosts, seed=9, events=5, window=(1_000.0, 5_000.0))
    again = churn_schedule(hosts, seed=9, events=5, window=(1_000.0, 5_000.0))
    other = churn_schedule(hosts, seed=10, events=5, window=(1_000.0, 5_000.0))
    assert first == again
    assert first != other
    assert first == sorted(first, key=lambda e: (e.at, e.host))
    for event in first:
        assert 1_000.0 <= event.at <= 5_000.0
        assert event.host in hosts
        assert 800.0 <= event.downtime_ms <= 2_500.0


def test_churn_schedule_validates_inputs():
    with pytest.raises(ValueError):
        churn_schedule([], seed=1, events=2, window=(0.0, 10.0))
    with pytest.raises(ValueError):
        churn_schedule(["h"], seed=1, events=2, window=(10.0, 0.0))
    with pytest.raises(ValueError, match="limp_fraction"):
        churn_schedule(["h"], seed=1, events=2, window=(0.0, 10.0),
                       limp_fraction=1.5)


def test_zero_limp_fraction_matches_the_default_schedule():
    hosts = ["h000", "h001"]
    kwargs = dict(seed=21, events=6, window=(500.0, 4_000.0))
    assert (churn_schedule(hosts, limp_fraction=0.0, **kwargs)
            == churn_schedule(hosts, **kwargs))


def test_full_limp_fraction_makes_every_event_gray():
    events = churn_schedule(["h000", "h001"], seed=21, events=8,
                            window=(500.0, 4_000.0), limp_fraction=1.0)
    assert events
    for event in events:
        assert event.kind == "limp"
        assert event.resource in ("cpu", "link", "disk")
        assert event.factor in (2.0, 4.0, 8.0)
    # gray churn is still seed-deterministic
    assert events == churn_schedule(["h000", "h001"], seed=21, events=8,
                                    window=(500.0, 4_000.0),
                                    limp_fraction=1.0)


def test_apply_churn_limp_keeps_the_host_up():
    world = World(seed=4)
    world.add_nodes(["a", "b"])
    events = churn_schedule(["a"], seed=3, events=1,
                            window=(100.0, 200.0), downtime_ms=(50.0, 60.0),
                            limp_fraction=1.0)
    assert events[0].kind == "limp"
    apply_churn(world, events)

    seen = []

    def probe():
        yield Timeout(events[0].at + 1.0)
        node = world.cluster.node("a")
        seen.append((node.is_up, node.cpu_speed, node.disk_speed))
        yield Timeout(events[0].downtime_ms + 1.0)
        seen.append((node.is_up, node.cpu_speed, node.disk_speed))

    world.run_process(probe(), name="probe")
    up_during, cpu_during, disk_during = seen[0]
    assert up_during  # limping, never down
    assert min(cpu_during, disk_during) < 1.0 or events[0].resource == "link"
    assert seen[1] == (True, 1.0, 1.0)  # window closed: byte-exact revert
    assert world.faults.churn_events.get("node_limp") == 1
    assert world.faults.churn_events.get("node_down", 0) == 0
    assert world.trace.count("fault", "node_limp") == 1
    assert world.trace.count("fault", "node_down") == 0


def test_apply_churn_downs_then_restores_hosts():
    world = World(seed=4)
    world.add_nodes(["a", "b"])
    events = churn_schedule(["a"], seed=7, events=1,
                            window=(100.0, 200.0), downtime_ms=(50.0, 60.0))
    apply_churn(world, events)

    seen = []

    def probe():
        yield Timeout(events[0].at + 1.0)
        seen.append(world.cluster.node("a").is_up)
        yield Timeout(events[0].downtime_ms + 1.0)
        seen.append(world.cluster.node("a").is_up)

    world.run_process(probe(), name="probe")
    assert seen == [False, True]
    assert world.faults.churn_events == {"node_down": 1, "node_up": 1}
    assert world.trace.count("fault", "node_down") == 1
    assert world.trace.count("fault", "node_up") == 1


def _run_population(seed):
    world = World(seed=seed)
    topo = line_fleet(5)
    topo.materialise(world)
    assignments = policy("round-robin").place(topo, [AppSpec("solo")])

    def scenario():
        assignment = assignments[0]
        yield from deploy_ftm_pair(
            world, assignment.ftm, list(assignment.nodes),
            composite_name=f"ftm-{assignment.app}",
        )
        population = Population(world, assignments, rate_per_s=4.0,
                                duration_ms=3_000.0)
        population.start()
        loads = yield from population.drain()
        return {"totals": population.totals(),
                "attempted": loads["solo"].attempted}

    result = world.run_process(scenario(), name="pop")
    result["finished_at"] = world.now  # arrival times shape the clock
    return result


def test_population_is_open_loop_and_seed_deterministic():
    first = _run_population(11)
    again = _run_population(11)
    other = _run_population(12)
    assert first == again
    assert first["totals"]["sent"] > 0
    assert first["totals"]["ok"] == first["totals"]["sent"]
    assert first != other  # different seed, different arrivals


def test_population_counts_requests_to_downed_client_as_dropped():
    world = World(seed=5)
    world.add_nodes(["r1", "r2", "cl"])
    assignment = Assignment(app="a", ftm="pbr", nodes=("r1", "r2"),
                            client="cl")

    def scenario():
        yield from deploy_ftm_pair(world, "pbr", ["r1", "r2"],
                                   composite_name="ftm-a")
        world.cluster.node("cl").crash()
        population = Population(world, [assignment], rate_per_s=5.0,
                                duration_ms=2_000.0)
        population.start()
        yield from population.drain()
        return population.totals()

    totals = world.run_process(scenario(), name="drop")
    assert totals["sent"] == 0
    assert totals["dropped"] > 0


def test_population_rejects_nonpositive_rate():
    world = World(seed=1)
    with pytest.raises(ValueError):
        Population(world, [], rate_per_s=0.0)
