"""Topology: generators, routing, and materialisation onto a world."""

import pytest

from repro.fleet import (
    FLEET_KINDS,
    Topology,
    TopologyError,
    line_fleet,
    make_fleet,
    random_fleet,
    star_fleet,
    tree_fleet,
)
from repro.kernel import World


def test_connect_validates_hosts_and_self_edges():
    topo = Topology()
    topo.add_host("a")
    topo.add_host("b")
    with pytest.raises(TopologyError):
        topo.connect("a", "nope")
    with pytest.raises(TopologyError):
        topo.connect("a", "a")
    topo.connect("a", "b")
    assert topo.edge("b", "a") is topo.edge("a", "b")  # canonical key


def test_line_route_is_the_chain_and_latency_sums():
    topo = line_fleet(4)
    assert topo.host_names() == ["h000", "h001", "h002", "h003"]
    assert topo.route("h000", "h003") == ["h000", "h001", "h002", "h003"]
    assert topo.route_edges("h000", "h002") == [
        ("h000", "h001"), ("h001", "h002"),
    ]
    assert topo.route_latency("h000", "h003") == pytest.approx(
        sum(topo.edge(a, b).latency
            for a, b in zip(topo.route("h000", "h003"),
                            topo.route("h000", "h003")[1:]))
    )


def test_star_routes_through_the_hub():
    topo = star_fleet(5)
    assert topo.route("h001", "h004") == ["h001", "h000", "h004"]


def test_tree_is_connected():
    topo = tree_fleet(9, fanout=3)
    for name in topo.host_names()[1:]:
        assert topo.route("h000", name)[0] == "h000"


def test_route_raises_on_disconnected_hosts():
    topo = Topology()
    topo.add_host("a")
    topo.add_host("b")
    with pytest.raises(TopologyError):
        topo.route("a", "b")


def test_random_fleet_is_seed_deterministic():
    first = random_fleet(12, seed=5)
    again = random_fleet(12, seed=5)
    other = random_fleet(12, seed=6)
    assert list(first.hosts.values()) == list(again.hosts.values())
    assert list(first.edges.values()) == list(again.edges.values())
    assert list(first.edges.values()) != list(other.edges.values())
    # always connected: every pair has a route
    names = first.host_names()
    for name in names[1:]:
        assert first.route(names[0], name)


@pytest.mark.parametrize("kind", FLEET_KINDS)
def test_make_fleet_every_kind(kind):
    topo = make_fleet(kind, 6, seed=1)
    assert len(topo.hosts) == 6
    assert topo.route("h000", "h005")


def test_materialise_builds_nodes_and_routed_links():
    topo = Topology()
    topo.add_host("a", cpu_speed=2.0, energy_budget=500.0)
    topo.add_host("b")
    topo.add_host("c")
    topo.connect("a", "b", latency=0.5, bandwidth=10_000.0)
    topo.connect("b", "c", latency=0.7, bandwidth=6_000.0)
    world = World(seed=3)
    topo.materialise(world)

    assert world.cluster.node("a").cpu_speed == 2.0
    assert world.cluster.node("a").energy_budget == 500.0
    assert world.cluster.node("b").energy_budget is None

    direct = world.network.link("a", "b")
    assert direct.latency == pytest.approx(0.5)
    routed = world.network.link("a", "c")
    assert routed.latency == pytest.approx(1.2)  # sum along the route
    assert routed.bandwidth == pytest.approx(6_000.0)  # min along route
    assert world.trace.count("network", "links_configured") == 1


def test_route_cache_serves_repeat_queries():
    topo = line_fleet(6)
    first = topo.route("h000", "h005")
    assert "h000" in topo._route_cache
    assert topo.route("h000", "h005") == first
    # the whole tree came from one Dijkstra: other destinations too
    assert topo.route("h000", "h003") == ["h000", "h001", "h002", "h003"]


def test_route_cache_invalidated_by_degraded_edge():
    topo = Topology()
    for name in ("a", "b", "c"):
        topo.add_host(name)
    topo.connect("a", "b", latency=1.0)
    topo.connect("b", "c", latency=1.0)
    topo.connect("a", "c", latency=3.0)
    assert topo.route("a", "c") == ["a", "b", "c"]
    # degrading an edge the cached tree uses must re-route
    topo.connect("a", "b", latency=10.0)
    assert topo.route("a", "c") == ["a", "c"]


def test_route_cache_invalidated_by_improved_edge():
    topo = Topology()
    for name in ("a", "b", "c"):
        topo.add_host(name)
    topo.connect("a", "b", latency=1.0)
    topo.connect("b", "c", latency=1.0)
    topo.connect("a", "c", latency=5.0)
    assert topo.route("a", "c") == ["a", "b", "c"]
    topo.connect("a", "c", latency=0.5)
    assert topo.route("a", "c") == ["a", "c"]


def test_route_cache_survives_bandwidth_only_change():
    topo = line_fleet(4)
    before = topo.route("h000", "h003")
    topo.connect("h001", "h002", latency=topo.edge("h001", "h002").latency,
                 bandwidth=1.0)
    assert "h000" in topo._route_cache  # kept: latencies unchanged
    assert topo.route("h000", "h003") == before


def test_route_cache_matches_uncached_recompute():
    """Cached trees must equal a from-scratch Dijkstra for every pair."""
    topo = random_fleet(12, seed=77)
    names = topo.host_names()
    cached = {
        (a, b): topo.route(a, b) for a in names for b in names if a != b
    }
    fresh = Topology()
    for host in topo.hosts.values():
        fresh.add_host(host.name, host.cpu_speed, host.energy_budget)
    for edge in topo.edges.values():
        fresh.connect(edge.a, edge.b, edge.latency, edge.bandwidth)
    for pair, path in cached.items():
        assert fresh.route(*pair) == path
