"""Topology: generators, routing, and materialisation onto a world."""

import pytest

from repro.fleet import (
    FLEET_KINDS,
    Topology,
    TopologyError,
    line_fleet,
    make_fleet,
    random_fleet,
    star_fleet,
    tree_fleet,
)
from repro.kernel import World


def test_connect_validates_hosts_and_self_edges():
    topo = Topology()
    topo.add_host("a")
    topo.add_host("b")
    with pytest.raises(TopologyError):
        topo.connect("a", "nope")
    with pytest.raises(TopologyError):
        topo.connect("a", "a")
    topo.connect("a", "b")
    assert topo.edge("b", "a") is topo.edge("a", "b")  # canonical key


def test_line_route_is_the_chain_and_latency_sums():
    topo = line_fleet(4)
    assert topo.host_names() == ["h000", "h001", "h002", "h003"]
    assert topo.route("h000", "h003") == ["h000", "h001", "h002", "h003"]
    assert topo.route_edges("h000", "h002") == [
        ("h000", "h001"), ("h001", "h002"),
    ]
    assert topo.route_latency("h000", "h003") == pytest.approx(
        sum(topo.edge(a, b).latency
            for a, b in zip(topo.route("h000", "h003"),
                            topo.route("h000", "h003")[1:]))
    )


def test_star_routes_through_the_hub():
    topo = star_fleet(5)
    assert topo.route("h001", "h004") == ["h001", "h000", "h004"]


def test_tree_is_connected():
    topo = tree_fleet(9, fanout=3)
    for name in topo.host_names()[1:]:
        assert topo.route("h000", name)[0] == "h000"


def test_route_raises_on_disconnected_hosts():
    topo = Topology()
    topo.add_host("a")
    topo.add_host("b")
    with pytest.raises(TopologyError):
        topo.route("a", "b")


def test_random_fleet_is_seed_deterministic():
    first = random_fleet(12, seed=5)
    again = random_fleet(12, seed=5)
    other = random_fleet(12, seed=6)
    assert list(first.hosts.values()) == list(again.hosts.values())
    assert list(first.edges.values()) == list(again.edges.values())
    assert list(first.edges.values()) != list(other.edges.values())
    # always connected: every pair has a route
    names = first.host_names()
    for name in names[1:]:
        assert first.route(names[0], name)


@pytest.mark.parametrize("kind", FLEET_KINDS)
def test_make_fleet_every_kind(kind):
    topo = make_fleet(kind, 6, seed=1)
    assert len(topo.hosts) == 6
    assert topo.route("h000", "h005")


def test_materialise_builds_nodes_and_routed_links():
    topo = Topology()
    topo.add_host("a", cpu_speed=2.0, energy_budget=500.0)
    topo.add_host("b")
    topo.add_host("c")
    topo.connect("a", "b", latency=0.5, bandwidth=10_000.0)
    topo.connect("b", "c", latency=0.7, bandwidth=6_000.0)
    world = World(seed=3)
    topo.materialise(world)

    assert world.cluster.node("a").cpu_speed == 2.0
    assert world.cluster.node("a").energy_budget == 500.0
    assert world.cluster.node("b").energy_budget is None

    direct = world.network.link("a", "b")
    assert direct.latency == pytest.approx(0.5)
    routed = world.network.link("a", "c")
    assert routed.latency == pytest.approx(1.2)  # sum along the route
    assert routed.bandwidth == pytest.approx(6_000.0)  # min along route
    assert world.trace.count("network", "links_configured") == 1
