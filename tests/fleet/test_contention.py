"""Shared-R contention: one pair's placement degrades its neighbour.

The fleet acceptance scenario: pair B runs happily on the two inner
hosts of a line fleet; pair A then lands on the outer hosts, and its
route crosses the narrow inner edge B depends on.  The fleet Resilience
Manager recomputes both pairs' R from the shared edge utilisation,
declares B's bandwidth-hungry PBR degraded, and executes the mandatory
transition to LFR — cause ``contention``, culprit ``appA``.
"""

from repro.fleet import Assignment, FleetResilienceManager, Topology
from repro.ftm import deploy_ftm_pair
from repro.kernel import Timeout, World


def _narrow_middle_line():
    topo = Topology()
    for name in ("h000", "h001", "h002", "h003"):
        topo.add_host(name)
    topo.connect("h000", "h001", latency=0.3, bandwidth=14_000.0)
    topo.connect("h001", "h002", latency=0.3, bandwidth=8_000.0)  # contested
    topo.connect("h002", "h003", latency=0.3, bandwidth=14_000.0)
    return topo


def test_neighbour_placement_forces_contention_transition():
    world = World(seed=7)
    topo = _narrow_middle_line()
    topo.materialise(world)
    manager = FleetResilienceManager(world, topo)

    def scenario():
        pair_b = yield from deploy_ftm_pair(
            world, "pbr", ["h001", "h002"], composite_name="ftm-appB"
        )
        manager.register(
            Assignment(app="appB", ftm="pbr", nodes=("h001", "h002"),
                       client="h000"),
            pair_b,
        )
        manager.start()
        yield Timeout(1_000.0)
        # alone, B's route fits the narrow edge: no decisions at all
        assert manager.decisions == []
        assert pair_b.ftm == "pbr"

        pair_a = yield from deploy_ftm_pair(
            world, "pbr", ["h000", "h003"], composite_name="ftm-appA"
        )
        manager.register(
            Assignment(app="appA", ftm="pbr", nodes=("h000", "h003"),
                       client="h001"),
            pair_a,
        )
        yield Timeout(15_000.0)
        manager.stop()
        return pair_a, pair_b

    pair_a, pair_b = world.run_process(scenario(), name="contention")

    b_decisions = [d for d in manager.decisions if d["app"] == "appB"]
    assert any(
        d["kind"] == "mandatory" and d["cause"] == "contention"
        and d["culprits"] == ["appA"] and d["executed"]
        for d in b_decisions
    ), b_decisions
    # B escaped to the low-bandwidth FTM; the narrow edge is contested
    # no more, so the way back shows up only as queued proposals for the
    # system manager (the man-in-the-loop damping oscillation)
    assert pair_b.ftm == "lfr"
    assert world.trace.count("fleet", "contention") >= 1
    summary = manager.summary()
    assert summary["contention_decisions"] >= 1
    assert summary["transitions"] >= 1
    assert summary["pending_proposals"] >= 1


def test_transition_keeps_serving_and_context_tracks_current_ftm():
    world = World(seed=8)
    topo = _narrow_middle_line()
    topo.materialise(world)
    manager = FleetResilienceManager(world, topo)

    def scenario():
        pair_b = yield from deploy_ftm_pair(
            world, "pbr", ["h001", "h002"], composite_name="ftm-appB"
        )
        placed_b = manager.register(
            Assignment(app="appB", ftm="pbr", nodes=("h001", "h002"),
                       client="h000"),
            pair_b,
        )
        manager.start()
        pair_a = yield from deploy_ftm_pair(
            world, "pbr", ["h000", "h003"], composite_name="ftm-appA"
        )
        manager.register(
            Assignment(app="appA", ftm="pbr", nodes=("h000", "h003"),
                       client="h001"),
            pair_a,
        )
        yield Timeout(15_000.0)
        manager.stop()
        return placed_b

    placed_b = world.run_process(scenario(), name="tracks")
    # demand follows the deployed FTM: after B's escape the utilisation
    # sweep sees LFR's low bandwidth appetite and B's own R recovers
    host_cpu, edge_bw = manager.utilisation()
    assert placed_b.pair.ftm == "lfr"
    narrow = edge_bw.get(("h001", "h002"), 0.0)
    assert narrow <= 8_000.0
    assert placed_b.context.r.bandwidth_ok
