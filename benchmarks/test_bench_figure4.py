"""Benchmark: regenerate Figure 4 — development effort of the patterns."""

from conftest import run_once

from repro.eval import figure4


def test_bench_figure4(benchmark):
    data = run_once(benchmark, figure4.generate)
    print("\n" + figure4.render(data))
    assert figure4.shape_checks(data) == []
