"""Shared configuration for the benchmark harness.

Every benchmark regenerates one paper artifact (a table or a figure),
prints it paper-style, and asserts its shape checks.  The heavy
simulations run with ``pedantic(rounds=1)`` — a Table 3 regeneration is
36 deployments + 90 transitions of a full distributed simulation; timing
one round is plenty.
"""



def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a single round and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
