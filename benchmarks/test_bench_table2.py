"""Benchmark: regenerate Table 2 — the Before/Proceed/After scheme."""

from conftest import run_once

from repro.eval import table2
from repro.eval.table2 import PAPER_TABLE2


def test_bench_table2(benchmark):
    data = run_once(benchmark, table2.generate)
    print("\n" + table2.render(data))

    # every paper row must be present with the same step content
    scheme = data["scheme"]
    for role, before, proceed, after in PAPER_TABLE2:
        matched = _lookup(scheme, role)
        assert matched is not None, f"missing scheme row for {role}"
        assert before.lower() in matched["before"].lower()
        assert _step_compatible(proceed, matched["proceed"])
        assert _step_compatible(after, matched["after"])

    # the component mapping covers all six FTMs with three slots each
    assert len(data["components"]) == 6
    for slots in data["components"].values():
        assert set(slots) == {"syncBefore", "proceed", "syncAfter"}


def _lookup(scheme, role):
    if role in scheme:
        return scheme[role]
    # A&Duplex is represented by its primary role
    for key, steps in scheme.items():
        if key.startswith("A&") and "Primary" in key and role == "A&Duplex":
            return steps
    return None


def _step_compatible(paper_step, our_step):
    return paper_step.split(" (")[0].lower() in our_step.lower()
