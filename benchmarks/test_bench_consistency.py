"""Benchmark: Sec. 5.3 — consistency of distributed adaptation."""

from conftest import run_once

from repro import exp
from repro.eval import consistency_eval

RUNS = 5


def test_bench_consistency(benchmark):
    result = run_once(benchmark, exp.run, consistency_eval.spec(runs=RUNS), jobs=1)
    data = consistency_eval.from_results(result.results)
    print("\n" + consistency_eval.render(data))
    assert consistency_eval.shape_checks(data) == []
