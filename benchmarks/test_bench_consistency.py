"""Benchmark: Sec. 5.3 — consistency of distributed adaptation."""

from conftest import run_once

from repro.eval import consistency_eval

RUNS = 5


def test_bench_consistency(benchmark):
    data = run_once(benchmark, consistency_eval.generate, runs=RUNS)
    print("\n" + consistency_eval.render(data))
    assert consistency_eval.shape_checks(data) == []
