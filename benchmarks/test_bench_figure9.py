"""Benchmark: regenerate Figure 9 — transition-phase breakdown."""

from conftest import run_once

from repro import exp
from repro.eval import figure9

RUNS = 3


def test_bench_figure9(benchmark):
    result = run_once(benchmark, exp.run, figure9.spec(runs=RUNS), jobs=1)
    data = figure9.from_results(result.results)
    print("\n" + figure9.render(data))
    assert figure9.shape_checks(data) == []

    # phase shares stay near the paper's (±10 percentage points)
    for transition, paper_shares in figure9.PAPER_FIGURE9.items():
        ours = data["transitions"][transition]["shares"]
        for phase, paper_share in paper_shares.items():
            assert abs(ours[phase] - paper_share) <= 0.10, (
                transition, phase, ours[phase], paper_share,
            )
