"""Benchmark: randomised fault-injection campaign (statistical resilience).

Not a single paper artifact but the statistical strengthening of its
claims: across randomised missions combining crashes, transient value
faults and concurrent on-line transitions, the system must never lose or
duplicate work and must mask every model-conformant fault.
"""

from conftest import run_once

from repro import exp
from repro.eval import campaign

MISSIONS = 10


def test_bench_campaign(benchmark):
    result = run_once(benchmark, exp.run, campaign.spec(missions=MISSIONS), jobs=1)
    data = campaign.from_results(result.results)
    print("\n" + campaign.render(data))
    assert campaign.shape_checks(data) == []
    assert data["clean_missions"] == MISSIONS
    assert data["total_reintegrations"] >= MISSIONS  # every crash recovered
