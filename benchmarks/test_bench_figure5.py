"""Benchmark: regenerate Figure 5 — SLOC per pattern element."""

from conftest import run_once

from repro.eval import figure5


def test_bench_figure5(benchmark):
    data = run_once(benchmark, figure5.generate)
    print("\n" + figure5.render(data))
    assert figure5.shape_checks(data) == []
    # the paper's plot tops out around 250 SLOC per element; ours are in
    # the same order of magnitude
    assert all(sloc <= 250 for sloc in data.values())
