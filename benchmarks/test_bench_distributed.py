"""Benchmark: executor backends — serial, persistent local pool, remote.

Writes ``BENCH_distributed.json`` (uploaded as a CI artifact next to
``BENCH_runner.json`` / ``BENCH_kernel.json``) with two sections:

* **grid** — campaign missions/sec across a jobs × coschedule × workers
  grid: single-process serial (the PR 4 configuration), the persistent
  local pool at 2 and ``cpu_count`` workers, and the remote backend
  fanning batches over 2 localhost ``repro worker`` subprocesses.  Every
  configuration's results are asserted byte-identical to the serial
  reference before any number is reported — backends are pure execution
  strategy.  Speedups are computed against the same-host single-process
  baseline measured in the same session (interleaved, best-of-REPS) and
  against the recorded PR 4 constant (117.0 missions/s).
* **pool** — the satellite micro-benchmark: dispatch overhead of the
  persistent pool vs a cold pool per ``exp.run`` call, over a burst of
  small specs (the ``repro reproduce`` shape: many specs, one process).

Localhost caveat recorded in the JSON: worker configurations can only
beat single-process throughput when the host has >1 CPU; the numbers
carry ``cpu_count`` so a 1-core container's flat grid reads as what it
is.  CI regenerates this file on multi-core runners.
"""

import json
import os
import re
import subprocess
import sys
import time
from pathlib import Path

from conftest import run_once

from repro import exp
from repro.eval import campaign

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_distributed.json"

#: The recorded PR 4 single-process figure (BENCH_kernel.json,
#: fast_coscheduled_missions_per_sec) — the cross-PR reference.
PR4_RECORDED_MISSIONS_PER_SEC = 117.0

MISSIONS = int(os.environ.get("BENCH_DISTRIBUTED_MISSIONS", "48"))
REQUESTS = 30
COSCHEDULE = 8
REPS = max(1, int(os.environ.get("BENCH_DISTRIBUTED_REPS", "2")))
#: Batches sized so every worker gets several (load-balancing realism).
CELL_SIZE = max(1, MISSIONS // 8)

POOL_BURST_SPECS = 8
POOL_BURST_CELLS = 4


def _campaign_spec():
    return campaign.sharded_spec(
        missions=MISSIONS, base_seed=5000, requests=REQUESTS,
        cell_size=CELL_SIZE,
    )


def _dump(result):
    return json.dumps(result.results, sort_keys=True)


def _start_worker():
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--listen", "127.0.0.1:0"],
        env=env, stdout=subprocess.PIPE, text=True,
    )
    line = process.stdout.readline()
    match = re.search(r"listening on (\S+)", line)
    assert match, f"worker did not announce its address: {line!r}"
    return process, match.group(1)


def _timed_run(**kwargs):
    spec = _campaign_spec()
    started = time.perf_counter()
    result = exp.run(spec, **kwargs)
    return result, MISSIONS / max(time.perf_counter() - started, 1e-9)


def _pool_burst(persistent):
    """Wall seconds for a burst of small local-pool runs.

    ``persistent=False`` tears the pool down before every run — the
    pre-PR behavior of one fresh ``multiprocessing.Pool`` per call.
    """
    specs = [
        campaign.sharded_spec(missions=POOL_BURST_CELLS * 2,
                              base_seed=6000 + 100 * i, requests=4,
                              cell_size=2)
        for i in range(POOL_BURST_SPECS)
    ]
    started = time.perf_counter()
    for spec in specs:
        if not persistent:
            exp.shutdown_local_pool()
        exp.run(spec, jobs=2, backend="local", batch=1)
    elapsed = time.perf_counter() - started
    exp.shutdown_local_pool()
    return elapsed


def test_bench_distributed_backends(benchmark):
    cpu_count = os.cpu_count() or 1
    workers = []
    addresses = []
    for _ in range(2):
        process, address = _start_worker()
        workers.append(process)
        addresses.append(address)
    try:
        reference = exp.run(_campaign_spec(), jobs=1, backend="serial")

        grid = [
            ("serial jobs=1 coschedule=1",
             dict(jobs=1, backend="serial")),
            ("serial jobs=1 coschedule=8",
             dict(jobs=1, backend="serial", coschedule=COSCHEDULE)),
            ("local jobs=2 coschedule=8",
             dict(jobs=2, backend="local", coschedule=COSCHEDULE)),
            ("remote workers=2 coschedule=8",
             dict(workers=addresses, coschedule=COSCHEDULE)),
        ]
        if cpu_count > 2:
            grid.insert(3, (f"local jobs={cpu_count} coschedule=8",
                            dict(jobs=cpu_count, backend="local",
                                 coschedule=COSCHEDULE)))

        # interleaved best-of-REPS: shared-hardware load drifts on a
        # minutes scale, so only back-to-back runs compare like with like
        best = {scenario: 0.0 for scenario, _ in grid}
        first_result, first_mps = run_once(
            benchmark, lambda: _timed_run(**dict(grid[0][1]))
        )
        assert _dump(first_result) == _dump(reference)
        best[grid[0][0]] = first_mps
        for rep in range(REPS):
            for scenario, kwargs in grid:
                if rep == 0 and scenario == grid[0][0]:
                    continue  # already measured via the benchmark fixture
                result, mps = _timed_run(**dict(kwargs))
                # backends are pure execution strategy: bytes first
                assert _dump(result) == _dump(reference), scenario
                best[scenario] = max(best[scenario], mps)
    finally:
        for process in workers:
            process.terminate()
        for process in workers:
            process.wait(timeout=10)
        exp.shutdown_local_pool()

    baseline = best["serial jobs=1 coschedule=1"]
    rows = [
        {
            "scenario": scenario,
            "missions_per_sec": round(mps, 2),
            "speedup": round(mps / baseline, 2),
        }
        for scenario, mps in best.items()
    ]
    multiworker = max(
        mps for scenario, mps in best.items()
        if "jobs=2" in scenario or "workers=2" in scenario
        or "jobs=4" in scenario
    )

    # -- pool micro-benchmark: persistent vs cold dispatch ----------------
    cold_s = min(_pool_burst(persistent=False) for _ in range(REPS))
    warm_s = min(_pool_burst(persistent=True) for _ in range(REPS))

    report = {
        "generated_by": "benchmarks/test_bench_distributed.py",
        "note": (
            f"best-of-{REPS} interleaved; campaign missions/sec over "
            f"{MISSIONS} seeded missions per configuration; byte-identity "
            "of every backend asserted against the serial reference "
            "before reporting"
        ),
        "host": {"cpu_count": cpu_count, "platform": sys.platform},
        "missions": MISSIONS,
        "requests": REQUESTS,
        "cell_size": CELL_SIZE,
        "baseline_missions_per_sec": round(baseline, 2),
        "pr4_recorded_missions_per_sec": PR4_RECORDED_MISSIONS_PER_SEC,
        "best_multiworker_missions_per_sec": round(multiworker, 2),
        "speedup_multiworker_vs_same_host_serial": round(
            multiworker / baseline, 2),
        "speedup_multiworker_vs_pr4_recorded": round(
            multiworker / PR4_RECORDED_MISSIONS_PER_SEC, 2),
        "rows": rows,
        "pool": {
            "burst_specs": POOL_BURST_SPECS,
            "cold_pool_s": round(cold_s, 3),
            "persistent_pool_s": round(warm_s, 3),
            "dispatch_overhead_saved": round(1.0 - warm_s / cold_s, 3),
        },
    }
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")

    lines = [
        f"{row['scenario']:<34s} {row['missions_per_sec']:>8.1f}/s "
        f"({row['speedup']:.2f}x)"
        for row in rows
    ]
    print(
        "\ndistributed grid (campaign missions/s, byte-identical):\n  "
        + "\n  ".join(lines)
        + f"\npool burst ({POOL_BURST_SPECS} specs): cold {cold_s:.2f}s vs "
        f"persistent {warm_s:.2f}s "
        f"({100 * (1 - warm_s / cold_s):.0f}% dispatch overhead saved)\n"
        f"host cpu_count={cpu_count}; "
        f"multiworker best {multiworker:.1f}/s = "
        f"{multiworker / baseline:.2f}x same-host serial, "
        f"{multiworker / PR4_RECORDED_MISSIONS_PER_SEC:.2f}x the recorded "
        f"PR 4 117.0/s\nwrote {BENCH_PATH.name}"
    )

    if cpu_count >= 2:
        # on real multi-core hardware the 2-worker configurations must
        # clear the bar; on a 1-core container parallelism cannot help,
        # so the grid is recorded but not asserted
        assert multiworker / baseline > 1.2, (
            f"multi-worker backends should beat single-process on "
            f"{cpu_count} CPUs: {multiworker:.1f} vs {baseline:.1f}"
        )
