"""Benchmark: executor backends — serial, local pool, remote, sharded.

Writes ``BENCH_distributed.json`` (uploaded as a CI artifact next to
``BENCH_runner.json`` / ``BENCH_kernel.json``) with four sections:

* **grid** — campaign missions/sec across a jobs × coschedule × workers
  grid: single-process serial, the persistent local pool, the remote
  backend fanning digest-mode batches over 2 localhost ``repro worker``
  subprocesses, and a 2-coordinator sharded campaign merged post hoc.
  Every configuration's results are asserted byte-identical to the
  serial reference before any number is reported — backends are pure
  execution strategy.  Worker shadow stores are wiped between timed
  runs so every rep measures execution, not a shadow cache hit.
* **wire** — the digest-protocol accounting: coordinator-received bytes
  per campaign cell in digest mode (workers return ``(slug, hash12,
  digest)`` tuples over ``RXD1`` frames) vs full-body ``units`` mode.
  The digest figure is asserted ≤ ``WIRE_BUDGET_BYTES_PER_CELL`` and
  recorded as ``bytes_per_cell_on_wire``.
* **coschedule** — the small-campaign clamp gate: at every campaign
  size in ``COSCHEDULE_SIZES`` the shipped ``coschedule=8`` must be
  ≥ 1.0× the serial lane.  Below ``COSCHEDULE_MIN_UNITS`` the runner
  auto-clamps to width 1, so parity holds *by identity* (asserted via
  ``coschedule_effective`` and byte-compare); at or above the threshold
  the ratio is measured with paired back-to-back runs.
* **pool** — dispatch overhead of the persistent pool vs a cold pool
  per ``exp.run`` call, over a burst of small specs.

Localhost caveat recorded in the JSON: worker configurations can only
beat single-process throughput when the host has >1 CPU; the numbers
carry ``cpu_count`` so a 1-core container's flat grid reads as what it
is.  CI regenerates this file on multi-core runners.
"""

import json
import os
import re
import shutil
import statistics
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from conftest import run_once

from repro import exp
from repro.eval import campaign

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_distributed.json"

#: The recorded PR 4 single-process figure (BENCH_kernel.json,
#: fast_coscheduled_missions_per_sec) — the cross-PR reference.
PR4_RECORDED_MISSIONS_PER_SEC = 117.0

MISSIONS = int(os.environ.get("BENCH_DISTRIBUTED_MISSIONS", "48"))
REQUESTS = 30
COSCHEDULE = 8
REPS = max(1, int(os.environ.get("BENCH_DISTRIBUTED_REPS", "2")))
#: Batches sized so every worker gets several (load-balancing realism).
CELL_SIZE = max(1, MISSIONS // 8)

#: The acceptance budget for digest-mode coordinator wire traffic.
WIRE_BUDGET_BYTES_PER_CELL = 150
#: The wire spec uses small cells so per-cell framing overhead is
#: measured at its *worst* (many cells, few units each).
WIRE_CELL_SIZE = 2

#: Campaign sizes for the coschedule parity gate: one below the
#: auto-clamp threshold (parity by identity) and one above (measured).
COSCHEDULE_SIZES = (MISSIONS, 256)
#: Extra paired samples for a measured size whose best ratio has not
#: reached 1.0x yet (noise retries, never a loosened bar).
GRID_RETRIES = 4
#: Minimum paired samples before the best-pair bar may stop early, and
#: the hard floor for the *median* pair — the same non-inferiority
#: methodology as ``test_bench_kernel.py`` (one pair's shared-hardware
#: noise is ±5–10%, so the median over several pairs is the robust
#: regression detector while best-of carries the file's semantics).
MIN_PAIRS = 3
NONINFERIORITY_FLOOR = 0.93

POOL_BURST_SPECS = 8
POOL_BURST_CELLS = 4


def _campaign_spec(missions=MISSIONS, seed=5000, cell_size=None,
                   requests=REQUESTS):
    return campaign.sharded_spec(
        missions=missions, base_seed=seed, requests=requests,
        cell_size=cell_size or max(1, missions // 8),
    )


def _dump(result):
    return json.dumps(result.results, sort_keys=True)


def _start_worker():
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    shadow = tempfile.mkdtemp(prefix="repro-bench-shadow-")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--listen",
         "127.0.0.1:0", "--shadow", shadow],
        env=env, stdout=subprocess.PIPE, text=True,
    )
    line = process.stdout.readline()
    match = re.search(r"listening on (\S+)", line)
    assert match, f"worker did not announce its address: {line!r}"
    return process, match.group(1), shadow


def _wipe_shadows(workers):
    """Empty every worker's shadow store so the next timed run measures
    execution rather than a shadow cache hit."""
    for _process, _address, shadow in workers:
        for entry in Path(shadow).iterdir():
            shutil.rmtree(entry, ignore_errors=True)


def _timed_run(spec=None, **kwargs):
    spec = spec or _campaign_spec()
    missions = sum(len(t.seeds) for t in spec.trials)
    started = time.perf_counter()
    result = exp.run(spec, **kwargs)
    return result, missions / max(time.perf_counter() - started, 1e-9)


def _pool_burst(persistent):
    """Wall seconds for a burst of small local-pool runs.

    ``persistent=False`` tears the pool down before every run — the
    pre-PR behavior of one fresh ``multiprocessing.Pool`` per call.
    """
    specs = [
        campaign.sharded_spec(missions=POOL_BURST_CELLS * 2,
                              base_seed=6000 + 100 * i, requests=4,
                              cell_size=2)
        for i in range(POOL_BURST_SPECS)
    ]
    started = time.perf_counter()
    for spec in specs:
        if not persistent:
            exp.shutdown_local_pool()
        exp.run(spec, jobs=2, backend="local", batch=1)
    elapsed = time.perf_counter() - started
    exp.shutdown_local_pool()
    return elapsed


def _coschedule_gate():
    """Parity of the shipped ``coschedule=8`` vs the serial lane at
    every campaign size — clamped sizes by identity, measured above."""
    sizes = {}
    for missions in COSCHEDULE_SIZES:
        # the kernel bench's cell shape (missions // 4): the lane the
        # shipped ``repro campaign --coschedule`` actually exercises
        spec = _campaign_spec(missions=missions, seed=5200 + missions,
                              cell_size=max(1, missions // 4))
        serial, serial_mps = _timed_run(spec=spec, jobs=1,
                                        backend="serial")
        clamped = spec.unit_count < exp.COSCHEDULE_MIN_UNITS
        cosched, mps = _timed_run(spec=spec, jobs=1, backend="serial",
                                  coschedule=COSCHEDULE)
        assert _dump(cosched) == _dump(serial), f"missions={missions}"
        entry = {
            "missions": missions,
            "clamped": clamped,
            "coschedule_effective": cosched.coschedule_effective,
            "serial_missions_per_sec": round(serial_mps, 2),
            "coscheduled_missions_per_sec": round(mps, 2),
        }
        if clamped:
            # below the threshold the runner reroutes to the serial
            # lane: the very same code path, so parity is structural
            assert cosched.coschedule == COSCHEDULE
            assert cosched.coschedule_effective == 1
            entry["ratio_vs_serial"] = 1.0
            entry["ratio_basis"] = "identity (auto-clamped to width 1)"
        else:
            assert cosched.coschedule_effective == COSCHEDULE
            ratios = [mps / serial_mps]
            max_pairs = max(REPS, MIN_PAIRS) + GRID_RETRIES
            while len(ratios) < max_pairs and (
                    max(ratios) < 1.0
                    or len(ratios) < max(REPS, MIN_PAIRS)):
                _, s_mps = _timed_run(spec=spec, jobs=1, backend="serial")
                _, c_mps = _timed_run(spec=spec, jobs=1, backend="serial",
                                      coschedule=COSCHEDULE)
                ratios.append(c_mps / s_mps)
            best = max(ratios)
            median = statistics.median(ratios)
            assert best >= 1.0, (
                f"coschedule={COSCHEDULE} lost to serial at "
                f"missions={missions}: best paired ratio {best:.3f} "
                f"over {len(ratios)} pairs"
            )
            assert median >= NONINFERIORITY_FLOOR, (
                f"coschedule={COSCHEDULE} costs throughput at "
                f"missions={missions}: median paired ratio "
                f"{median:.3f} < {NONINFERIORITY_FLOOR}"
            )
            entry["ratio_vs_serial"] = round(best, 3)
            entry["ratio_median"] = round(median, 3)
            entry["ratio_basis"] = f"best of {len(ratios)} paired runs"
        sizes[str(missions)] = entry
    return sizes


def test_bench_distributed_backends(benchmark):
    cpu_count = os.cpu_count() or 1
    workers = [_start_worker() for _ in range(2)]
    addresses = [address for _process, address, _shadow in workers]
    mc_best = 0.0
    try:
        reference = exp.run(_campaign_spec(), jobs=1, backend="serial")

        grid = [
            ("serial jobs=1 coschedule=1",
             dict(jobs=1, backend="serial")),
            ("serial jobs=1 coschedule=8",
             dict(jobs=1, backend="serial", coschedule=COSCHEDULE)),
            ("local jobs=2 coschedule=8",
             dict(jobs=2, backend="local", coschedule=COSCHEDULE)),
            ("remote workers=2 digest",
             dict(workers=addresses, coschedule=COSCHEDULE)),
        ]
        if cpu_count > 2:
            grid.insert(3, (f"local jobs={cpu_count} coschedule=8",
                            dict(jobs=cpu_count, backend="local",
                                 coschedule=COSCHEDULE)))

        # interleaved best-of-REPS: shared-hardware load drifts on a
        # minutes scale, so only back-to-back runs compare like with like
        best = {scenario: 0.0 for scenario, _ in grid}
        first_result, first_mps = run_once(
            benchmark, lambda: _timed_run(**dict(grid[0][1]))
        )
        assert _dump(first_result) == _dump(reference)
        best[grid[0][0]] = first_mps
        for rep in range(REPS):
            for scenario, kwargs in grid:
                if rep == 0 and scenario == grid[0][0]:
                    continue  # already measured via the benchmark fixture
                if "workers" in kwargs:
                    _wipe_shadows(workers)
                result, mps = _timed_run(**dict(kwargs))
                # backends are pure execution strategy: bytes first
                assert _dump(result) == _dump(reference), scenario
                best[scenario] = max(best[scenario], mps)

        # -- sharded campaign: 2 coordinators × 2 workers -----------------
        mc_scenario = "coordinators=2 workers=2 digest"
        for _ in range(REPS):
            _wipe_shadows(workers)
            with tempfile.TemporaryDirectory() as tmp:
                spec = _campaign_spec()
                missions = sum(len(t.seeds) for t in spec.trials)
                started = time.perf_counter()
                mc_result, _info = exp.run_multi_coordinator(
                    spec, addresses,
                    store_root=os.path.join(tmp, "merged"),
                    coordinators=2, jobs=1,
                )
                mc_mps = missions / max(time.perf_counter() - started,
                                        1e-9)
            assert _dump(mc_result) == _dump(reference), mc_scenario
            mc_best = max(mc_best, mc_mps)
        best[mc_scenario] = mc_best

        # -- wire accounting: digest vs full-body returns -----------------
        wire_spec = _campaign_spec(seed=5100, cell_size=WIRE_CELL_SIZE)
        wire_cells = len(wire_spec.trials)
        wire_reference = exp.run(wire_spec, jobs=1, backend="serial")
        _wipe_shadows(workers)
        digest_run = exp.run(wire_spec, workers=addresses)
        _wipe_shadows(workers)
        full_run = exp.run(
            wire_spec,
            backend=exp.RemoteBackend(addresses, mode="units"),
        )
        assert _dump(digest_run) == _dump(wire_reference)
        assert _dump(full_run) == _dump(wire_reference)
        assert digest_run.cells_acked_digest == wire_cells
        assert digest_run.cells_shipped_full == 0
        digest_bpc = digest_run.wire_bytes_in / wire_cells
        full_bpc = full_run.wire_bytes_in / wire_cells
        # the acceptance budget: digest-mode coordinator wire traffic
        assert digest_bpc <= WIRE_BUDGET_BYTES_PER_CELL, (
            f"digest mode used {digest_bpc:.0f} bytes/cell on the wire "
            f"(budget {WIRE_BUDGET_BYTES_PER_CELL}) over {wire_cells} "
            "cells"
        )
        assert digest_bpc < full_bpc, (
            f"digest returns ({digest_bpc:.0f} B/cell) must undercut "
            f"full bodies ({full_bpc:.0f} B/cell)"
        )
    finally:
        for process, _address, shadow in workers:
            process.terminate()
        for process, _address, shadow in workers:
            process.wait(timeout=10)
            shutil.rmtree(shadow, ignore_errors=True)
        exp.shutdown_local_pool()

    baseline = best["serial jobs=1 coschedule=1"]
    rows = [
        {
            "scenario": scenario,
            "missions_per_sec": round(mps, 2),
            "speedup": round(mps / baseline, 2),
        }
        for scenario, mps in best.items()
    ]
    multiworker = max(
        mps for scenario, mps in best.items()
        if "jobs=" in scenario and "jobs=1" not in scenario
        or "workers=2" in scenario
    )

    # -- coschedule parity gate (single process, no workers needed) -------
    coschedule_sizes = _coschedule_gate()

    # -- pool micro-benchmark: persistent vs cold dispatch ----------------
    cold_s = min(_pool_burst(persistent=False) for _ in range(REPS))
    warm_s = min(_pool_burst(persistent=True) for _ in range(REPS))

    report = {
        "generated_by": "benchmarks/test_bench_distributed.py",
        "note": (
            f"best-of-{REPS} interleaved; campaign missions/sec over "
            f"{MISSIONS} seeded missions per configuration; byte-identity "
            "of every backend asserted against the serial reference "
            "before reporting; worker shadows wiped between timed runs"
        ),
        "host": {"cpu_count": cpu_count, "platform": sys.platform},
        "missions": MISSIONS,
        "requests": REQUESTS,
        "cell_size": CELL_SIZE,
        "baseline_missions_per_sec": round(baseline, 2),
        "pr4_recorded_missions_per_sec": PR4_RECORDED_MISSIONS_PER_SEC,
        "best_multiworker_missions_per_sec": round(multiworker, 2),
        "speedup_multiworker_vs_same_host_serial": round(
            multiworker / baseline, 2),
        "speedup_multiworker_vs_pr4_recorded": round(
            multiworker / PR4_RECORDED_MISSIONS_PER_SEC, 2),
        "bytes_per_cell_on_wire": round(digest_bpc, 1),
        "rows": rows,
        "wire": {
            "mode": "digest (RXD1 acks, shadow-store reconciliation)",
            "cells": wire_cells,
            "cell_size": WIRE_CELL_SIZE,
            "budget_bytes_per_cell": WIRE_BUDGET_BYTES_PER_CELL,
            "bytes_per_cell_on_wire": round(digest_bpc, 1),
            "full_mode_bytes_per_cell": round(full_bpc, 1),
            "reduction_vs_full": round(1.0 - digest_bpc / full_bpc, 3),
            "digest_bytes_in": digest_run.wire_bytes_in,
            "digest_bytes_out": digest_run.wire_bytes_out,
            "cells_acked_digest": digest_run.cells_acked_digest,
            "cells_shipped_full": digest_run.cells_shipped_full,
        },
        "coschedule": {
            "width": COSCHEDULE,
            "min_units_threshold": exp.COSCHEDULE_MIN_UNITS,
            "sizes": coschedule_sizes,
        },
        "pool": {
            "burst_specs": POOL_BURST_SPECS,
            "cold_pool_s": round(cold_s, 3),
            "persistent_pool_s": round(warm_s, 3),
            "dispatch_overhead_saved": round(1.0 - warm_s / cold_s, 3),
        },
    }
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")

    lines = [
        f"{row['scenario']:<34s} {row['missions_per_sec']:>8.1f}/s "
        f"({row['speedup']:.2f}x)"
        for row in rows
    ]
    cosched_lines = [
        f"missions={entry['missions']:<4d} ratio "
        f"{entry['ratio_vs_serial']:.3f} ({entry['ratio_basis']})"
        for entry in coschedule_sizes.values()
    ]
    print(
        "\ndistributed grid (campaign missions/s, byte-identical):\n  "
        + "\n  ".join(lines)
        + f"\nwire: digest {digest_bpc:.0f} B/cell vs full "
        f"{full_bpc:.0f} B/cell over {wire_cells} cells "
        f"(budget {WIRE_BUDGET_BYTES_PER_CELL})"
        + "\ncoschedule parity:\n  " + "\n  ".join(cosched_lines)
        + f"\npool burst ({POOL_BURST_SPECS} specs): cold {cold_s:.2f}s vs "
        f"persistent {warm_s:.2f}s "
        f"({100 * (1 - warm_s / cold_s):.0f}% dispatch overhead saved)\n"
        f"host cpu_count={cpu_count}; "
        f"multiworker best {multiworker:.1f}/s = "
        f"{multiworker / baseline:.2f}x same-host serial, "
        f"{multiworker / PR4_RECORDED_MISSIONS_PER_SEC:.2f}x the recorded "
        f"PR 4 117.0/s\nwrote {BENCH_PATH.name}"
    )

    if cpu_count >= 2:
        # on real multi-core hardware the 2-worker configurations must
        # clear the bar; on a 1-core container parallelism cannot help,
        # so the grid is recorded but not asserted
        assert multiworker / baseline > 1.2, (
            f"multi-worker backends should beat single-process on "
            f"{cpu_count} CPUs: {multiworker:.1f} vs {baseline:.1f}"
        )
