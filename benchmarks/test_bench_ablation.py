"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. **Platform-speed sensitivity** — Table 3's headline ratio (deployment
   ≈ 3.8× a transition) must be a property of the differential approach,
   not of one calibration point: rescaling every platform cost by 0.5×
   and 2× must preserve the ratio band.
2. **Quiescence ablation** — the composite gate is what keeps requests
   safe across a transition; with a steady request load the transition
   must still complete, buffer the in-flight traffic, and lose nothing.
3. **Oscillation ablation** — the man-in-the-loop rule (Sec. 5.4) against
   the naive greedy policy under a flapping bandwidth signal.
"""

from conftest import run_once

from repro.core import AdaptationEngine, replay_oscillation
from repro.core.transition_graph import _ctx
from repro.ftm import Client, deploy_ftm_pair
from repro.kernel import CostModel, Timeout, World


def _ratio_for(costs: CostModel, seed: int) -> float:
    world = World(seed=seed, costs=costs)
    world.add_nodes(["alpha", "beta"])

    def do():
        pair = yield from deploy_ftm_pair(world, "pbr", ["alpha", "beta"])
        deploy_ms = world.now
        engine = AdaptationEngine(world, pair)
        report = yield from engine.transition("lfr")
        return deploy_ms / report.per_replica_ms

    return world.run_process(do(), name="ratio")


def test_bench_ablation_platform_speed(benchmark):
    def measure():
        return {
            scale: _ratio_for(CostModel().scaled(scale), seed=77)
            for scale in (0.5, 1.0, 2.0)
        }

    ratios = run_once(benchmark, measure)
    print("\ndeployment/transition ratio by platform speed:")
    for scale, ratio in ratios.items():
        print(f"  costs x{scale}: {ratio:.2f}x")
    for ratio in ratios.values():
        assert 2.5 <= ratio <= 6.0
    # the ratio is scale-invariant (within jitter): the differential
    # advantage is structural, not a calibration artifact
    values = list(ratios.values())
    assert max(values) - min(values) < 1.0


def test_bench_ablation_quiescence_under_load(benchmark):
    def measure():
        world = World(seed=78)
        world.add_nodes(["alpha", "beta", "client"])

        def scenario():
            pair = yield from deploy_ftm_pair(world, "pbr", ["alpha", "beta"])
            engine = AdaptationEngine(world, pair)
            client = Client(
                world, world.cluster.node("client"), "c1", pair.node_names(),
                timeout=5_000.0,
            )
            served = []

            def load():
                for _ in range(40):
                    reply = yield from client.request(("add", 1))
                    served.append(reply)
                    yield Timeout(40.0)

            loader = world.sim.spawn(load())
            yield Timeout(300.0)
            report = yield from engine.transition("lfr")
            yield loader
            return {
                "served": len(served),
                "all_ok": all(r.ok for r in served),
                "final_value": served[-1].value,
                "buffered": sum(
                    replica.composite.buffered_while_closed
                    for replica in pair.replicas
                ),
                "transition_ms": report.per_replica_ms,
            }

        return world.run_process(scenario(), name="scenario")

    result = run_once(benchmark, measure)
    print(
        f"\nquiescence under load: {result['served']} requests, all ok: "
        f"{result['all_ok']}, buffered during transition: "
        f"{result['buffered']}, transition {result['transition_ms']:.0f} ms"
    )
    assert result["served"] == 40
    assert result["all_ok"]
    assert result["final_value"] == 40   # nothing lost, nothing doubled
    assert result["buffered"] >= 1        # the gate actually buffered load


def test_bench_ablation_oscillation(benchmark):
    def measure():
        events = ["bandwidth-drop", "bandwidth-increase"] * 25
        return {
            "man_in_the_loop": replay_oscillation(
                "pbr", _ctx(), events, man_in_the_loop=True
            ).transitions,
            "naive": replay_oscillation(
                "pbr", _ctx(), events, man_in_the_loop=False
            ).transitions,
        }

    result = run_once(benchmark, measure)
    print(
        f"\noscillating bandwidth (50 swings): naive policy reconfigures "
        f"{result['naive']}x, man-in-the-loop {result['man_in_the_loop']}x"
    )
    assert result["naive"] == 50
    assert result["man_in_the_loop"] == 1
