"""Benchmark: the kernel fast path and the in-process world co-scheduler.

Two cases, both written into ``BENCH_kernel.json`` (uploaded as a CI
artifact next to ``BENCH_runner.json``):

* **micro** — a zero-delay resume chain, a timed-event chain and a
  mass-timer workload (20k concurrent periodic timers — the regime where
  the timer wheel engages) driven through ``Simulator`` with the fast
  path on and off, reporting events/sec for each lane;
* **campaign** — seeded missions of the statistical fault-injection
  campaign, measured along two axes: legacy kernel vs fast kernel, and
  fresh-built worlds vs arena-reused worlds (``REPRO_WORLD_REUSE``),
  solo and through the experiment runner at every co-schedule grid size
  in ``COSCHEDULE_GRID`` — the configuration ``repro campaign
  --coschedule`` ships.  Before any number is reported, every reuse and
  co-scheduled result is asserted byte-identical to the fresh serial
  reference, and one seeded mission is asserted trace-digest-identical
  across all four (fast|legacy kernel) x (express|plain heartbeat)
  combinations — the heartbeat express lane and the timer wheel are
  optimisations, never semantics changes.  Co-scheduled throughput is compared against the serial
  lane with *paired* back-to-back runs (the ratio of adjacent runs
  cancels shared-hardware drift that inverts phase-sequential
  comparisons): at every grid size the best pair must reach >= 1.0x and
  the median pair must clear the non-inferiority floor — the pool never
  costs real throughput.

The campaign case carries a **soft regression guard**: if a previous
``BENCH_kernel.json`` exists, a >20% drop in co-scheduled missions/sec
prints a loud warning (never a failure — these are wall-clock numbers on
shared hardware).  The baseline constant is the PR 3 checkout running
the same sharded campaign end-to-end (``exp.run(spec, jobs=1)``, its
only mode), measured interleaved run-for-run against this tree on the
same host: best-of-8 gave 49.78 missions/sec.  The recorded
``speedup_vs_pr3_baseline`` is computed against that constant.

Numbers are best-of-``BENCH_KERNEL_REPS`` (default 3) over
``BENCH_KERNEL_MISSIONS`` missions (default 64) — override via the
environment for longer, steadier runs.
"""

import json
import os
import statistics
import time
from pathlib import Path

from conftest import run_once

from repro import exp
from repro.eval import campaign
from repro.kernel import (
    Simulator,
    clear_world_arena,
    run_solo,
    set_world_reuse,
    world_arena_stats,
    world_reuse_enabled,
)
from repro.kernel import network as netmod

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"

#: Missions/sec of the PR 3 checkout running the sharded campaign
#: end-to-end through its own ``exp.run(spec, jobs=1)`` (single heap, no
#: co-scheduling), measured interleaved against this tree on the same
#: host — the denominator of the recorded speedup.
PR3_BASELINE_MISSIONS_PER_SEC = 49.78

#: Missions/sec of the immediately preceding checkout (PR 9, before the
#: timer wheel + heartbeat express lane) on the reuse-coscheduled co=8
#: lane, measured interleaved run-for-run against this tree on the same
#: host (best-of-8; this tree measured 105.0 in the same session).  The
#: paired per-round ratios ranged 0.84-1.22 with median 1.06 — the
#: fast-lane win at mission scale is real but modest, and smaller than
#: one round's shared-hardware noise; absolute numbers for *identical*
#: code swing +-20% on this host, so only interleaved pairs are valid.
PREV_TREE_MISSIONS_PER_SEC = 95.45
PREV_TREE_PAIRED_MEDIAN_RATIO = 1.06

#: Soft guard: warn when co-scheduled throughput drops below this
#: fraction of the previously recorded number.
SOFT_GUARD_FRACTION = 0.8

MICRO_EVENTS = 50_000
MASS_TIMERS = 20_000
MASS_TIMER_EVENTS = 200_000
MISSIONS = int(os.environ.get("BENCH_KERNEL_MISSIONS", "64"))
REQUESTS = 30
COSCHEDULE = 8
COSCHEDULE_GRID = (2, 4, 8)
REPS = max(1, int(os.environ.get("BENCH_KERNEL_REPS", "3")))

#: Hard floor for the *median* paired co-scheduled/serial ratio.  The
#: pool's true cost is within a couple percent of zero; shared-hardware
#: noise on one pair is +-5-10%, so the median over REPS pairs (plus
#: retries) is the robust detector for a real regression.
NONINFERIORITY_FLOOR = 0.93

#: Extra paired samples granted to a grid size whose best ratio has not
#: reached 1.0x yet (noise retries, never a loosened bar).
GRID_RETRIES = 4


def _zero_delay_chain(fast_path):
    """Events/sec through a self-reposting zero-delay callback chain."""
    sim = Simulator(fast_path=fast_path)
    remaining = [MICRO_EVENTS]

    def tick():
        remaining[0] -= 1
        if remaining[0] > 0:
            sim.post(tick)

    sim.post(tick)
    started = time.perf_counter()
    sim.run()
    return MICRO_EVENTS / max(time.perf_counter() - started, 1e-9)


def _timed_chain(fast_path):
    """Events/sec through a self-rescheduling timed callback chain."""
    sim = Simulator(fast_path=fast_path)
    remaining = [MICRO_EVENTS]

    def tick():
        remaining[0] -= 1
        if remaining[0] > 0:
            sim.call_later(1.0, tick)

    sim.call_later(1.0, tick)
    started = time.perf_counter()
    sim.run()
    return MICRO_EVENTS / max(time.perf_counter() - started, 1e-9)


def _mass_timer_chain(fast_path):
    """Events/sec with 20k concurrent periodic timers (wheel regime).

    Missions keep a handful of timers pending, far below the wheel's
    engage threshold; this case measures the load it exists for — a
    standing mass of long-period timers (fleet-scale tickers), where
    far-horizon inserts park in O(1) buckets and keep the hot heap
    shallow.  Fast and legacy execute the identical event sequence.
    """
    sim = Simulator(seed=42, fast_path=fast_path)
    rng = sim.random.substream("bench")
    remaining = [MASS_TIMER_EVENTS]

    def make(period):
        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.call_later(period, tick)
        return tick

    for _ in range(MASS_TIMERS):
        period = 40.0 + rng.random() * 260.0
        sim.call_later(rng.random() * period, make(period))
    started = time.perf_counter()
    sim.run()
    return MASS_TIMER_EVENTS / max(time.perf_counter() - started, 1e-9)


def _heartbeat_parity_digests():
    """One seeded mission's trace digest per (fast, express) combination.

    The byte-identity gate for the control-plane fast lane: the timer
    wheel (fast kernel) and the heartbeat express path must replay the
    legacy kernel bit for bit — same event order, same RNG draws, same
    fault drops — so all four digests must be one digest.
    """
    digests = {}
    shipped_fast = Simulator.DEFAULT_FAST_PATH
    try:
        for fast in (True, False):
            for express in (True, False):
                netmod.set_beat_express(express)
                Simulator.DEFAULT_FAST_PATH = fast
                task = campaign.mission_task(5003, requests=REQUESTS)
                run_solo(task)
                key = (
                    f"{'fast' if fast else 'legacy'}_"
                    f"{'express' if express else 'plain'}"
                )
                digests[key] = task.world.trace.digest()
    finally:
        netmod.set_beat_express(True)
        Simulator.DEFAULT_FAST_PATH = shipped_fast
    return digests


def _campaign_spec():
    return campaign.sharded_spec(
        missions=MISSIONS, base_seed=5000, requests=REQUESTS,
        cell_size=max(1, MISSIONS // 4),
    )


def _solo_missions_per_sec():
    started = time.perf_counter()
    for seed in range(5000, 5000 + MISSIONS):
        run_solo(campaign.mission_task(seed, requests=REQUESTS))
    return MISSIONS / max(time.perf_counter() - started, 1e-9)


def _coscheduled_run(coschedule=COSCHEDULE):
    # coschedule_min_units=0: this grid measures the co-schedule lane
    # itself, so the small-campaign auto-clamp must not reroute it to
    # serial at bench sizes below the threshold.
    spec = _campaign_spec()
    started = time.perf_counter()
    result = exp.run(spec, jobs=1, coschedule=coschedule,
                     coschedule_min_units=0)
    return result, MISSIONS / max(time.perf_counter() - started, 1e-9)


def _serial_run():
    """The ``coschedule=1`` lane — the grid comparisons' denominator."""
    return _coscheduled_run(coschedule=1)


def _best(fn, reps=REPS):
    return max(fn() for _ in range(reps))


def _soft_guard(current):
    """Warn (never fail) when throughput regressed >20% vs the record."""
    if not BENCH_PATH.exists():
        return
    try:
        previous = json.loads(BENCH_PATH.read_text())
        recorded = previous["campaign"]["fast_coscheduled_missions_per_sec"]
    except (ValueError, KeyError, TypeError):
        return
    if current < SOFT_GUARD_FRACTION * recorded:
        print(
            f"\nWARNING: kernel throughput regressed "
            f"{100 * (1 - current / recorded):.0f}%: "
            f"{current:.1f} missions/s vs recorded {recorded:.1f} "
            f"(soft guard at {SOFT_GUARD_FRACTION:.0%}; wall-clock "
            f"numbers on shared hardware — investigate before trusting)"
        )


def test_bench_kernel_fast_path_and_coschedule(benchmark):
    # -- micro: the two lanes, fast vs legacy ------------------------------
    micro = {
        "zero_delay_fast_events_per_sec": _best(
            lambda: _zero_delay_chain(True)),
        "zero_delay_legacy_events_per_sec": _best(
            lambda: _zero_delay_chain(False)),
        "timed_fast_events_per_sec": _best(lambda: _timed_chain(True)),
        "timed_legacy_events_per_sec": _best(lambda: _timed_chain(False)),
        "mass_timer_fast_events_per_sec": _best(
            lambda: _mass_timer_chain(True)),
        "mass_timer_legacy_events_per_sec": _best(
            lambda: _mass_timer_chain(False)),
    }

    # -- byte-identity: (fast|legacy) x (express|plain) --------------------
    parity_digests = _heartbeat_parity_digests()
    assert len(set(parity_digests.values())) == 1, (
        f"trace digests diverge across kernel/heartbeat combos: "
        f"{parity_digests}"
    )

    # -- campaign: (legacy|fast) x (fresh|reuse) x coschedule grid ---------
    # Configurations are interleaved within each round (not phase-by-
    # phase): shared-hardware load drifts on a minutes scale, large
    # enough to invert phase-sequential comparisons, so only back-to-back
    # runs compare like with like.  Best-of-REPS each.
    assert Simulator.DEFAULT_FAST_PATH  # the shipped default
    assert world_reuse_enabled()  # arena reuse is the shipped default

    def _legacy_solo_missions_per_sec():
        Simulator.DEFAULT_FAST_PATH = False
        try:
            return _solo_missions_per_sec()
        finally:
            Simulator.DEFAULT_FAST_PATH = True

    # The reference store: fresh-built worlds, serial execution.  Every
    # reuse/co-scheduled configuration must reproduce it byte for byte.
    set_world_reuse(False)
    clear_world_arena()
    reference = exp.run(_campaign_spec(), jobs=1)
    ref_json = json.dumps(reference.results, sort_keys=True)
    events_by_source = dict(reference.events_by_source)

    def _assert_identical(result, label):
        assert json.dumps(result.results, sort_keys=True) == ref_json, (
            f"{label}: store differs from the fresh serial reference"
        )

    legacy_solo = _legacy_solo_missions_per_sec()
    fresh_solo = _solo_missions_per_sec()

    set_world_reuse(True)
    clear_world_arena()
    reuse_solo = _solo_missions_per_sec()
    coscheduled, _first_mps = run_once(benchmark, _coscheduled_run)
    _assert_identical(coscheduled, f"reuse coschedule={COSCHEDULE}")
    serial_checked = False
    checked_sizes = set()
    reuse_serial = 0.0
    grid = {size: {"mps": 0.0, "ratios": []} for size in COSCHEDULE_GRID}

    def _grid_pair(size):
        """One back-to-back (serial, co-scheduled) pair — the drift-immune
        unit of comparison."""
        nonlocal reuse_serial, serial_checked
        serial_result, serial_mps = _serial_run()
        if not serial_checked:
            _assert_identical(serial_result, "reuse serial")
            serial_checked = True
        reuse_serial = max(reuse_serial, serial_mps)
        result, mps = _coscheduled_run(size)
        if size not in checked_sizes:
            _assert_identical(result, f"reuse coschedule={size}")
            checked_sizes.add(size)
        entry = grid[size]
        entry["mps"] = max(entry["mps"], mps)
        entry["ratios"].append(mps / serial_mps)

    for _ in range(REPS):
        set_world_reuse(False)
        legacy_solo = max(legacy_solo, _legacy_solo_missions_per_sec())
        fresh_solo = max(fresh_solo, _solo_missions_per_sec())
        set_world_reuse(True)
        reuse_solo = max(reuse_solo, _solo_missions_per_sec())
        for size in COSCHEDULE_GRID:
            _grid_pair(size)

    # The grid guarantee: co-scheduling never loses to the serial lane.
    # The pool's true cost is within a couple percent of zero, smaller
    # than one pair's shared-hardware noise, so lagging sizes get extra
    # paired samples before the hard assertions: the best pair must
    # reach parity (the file's best-of semantics) and the median must
    # clear the non-inferiority floor (a real regression fails both).
    for _ in range(GRID_RETRIES):
        lagging = [
            s for s in COSCHEDULE_GRID if max(grid[s]["ratios"]) < 1.0
        ]
        if not lagging:
            break
        for size in lagging:
            _grid_pair(size)
    for size in COSCHEDULE_GRID:
        ratios = grid[size]["ratios"]
        best, median = max(ratios), statistics.median(ratios)
        assert best >= 1.0, (
            f"coschedule={size} never reached the serial lane: best "
            f"paired ratio {best:.3f} over {len(ratios)} pairs"
        )
        assert median >= NONINFERIORITY_FLOOR, (
            f"coschedule={size} costs throughput: median paired ratio "
            f"{median:.3f} < {NONINFERIORITY_FLOOR}"
        )

    cosched_mps = grid[COSCHEDULE]["mps"]
    _soft_guard(cosched_mps)
    speedup = cosched_mps / PR3_BASELINE_MISSIONS_PER_SEC
    report = {
        "generated_by": "benchmarks/test_bench_kernel.py",
        "note": (
            f"best-of-{REPS}; missions/sec over {MISSIONS} seeded campaign "
            "missions, single process; micro numbers are kernel events/sec"
        ),
        "micro": {k: round(v, 1) for k, v in micro.items()},
        "parity": {
            "byte_identical": True,
            "combos": sorted(parity_digests),
            "trace_digest": next(iter(parity_digests.values())),
        },
        "events_by_source": events_by_source,
        "campaign": {
            "missions": MISSIONS,
            "requests": REQUESTS,
            "coschedule": COSCHEDULE,
            "coschedule_grid": list(COSCHEDULE_GRID),
            "pr3_baseline_missions_per_sec": PR3_BASELINE_MISSIONS_PER_SEC,
            "prev_tree": {
                "missions_per_sec": PREV_TREE_MISSIONS_PER_SEC,
                "paired_median_ratio": PREV_TREE_PAIRED_MEDIAN_RATIO,
                "note": (
                    "PR 9 checkout, co=8 reuse lane, interleaved "
                    "run-for-run on the same host (best-of-8 each side); "
                    "ratio is the median of 8 back-to-back pairs"
                ),
            },
            "legacy_solo_missions_per_sec": round(legacy_solo, 2),
            "fast_solo_missions_per_sec": round(fresh_solo, 2),
            "fast_coscheduled_missions_per_sec": round(cosched_mps, 2),
            "speedup_vs_pr3_baseline": round(speedup, 2),
            "reuse": {
                "enabled_by_default": True,
                "byte_identical_to_fresh": True,
                "solo_missions_per_sec": round(reuse_solo, 2),
                "serial_missions_per_sec": round(reuse_serial, 2),
                "coscheduled_missions_per_sec": {
                    str(size): round(grid[size]["mps"], 2)
                    for size in COSCHEDULE_GRID
                },
                "paired_ratio_vs_serial": {
                    str(size): {
                        "best": round(max(grid[size]["ratios"]), 3),
                        "median": round(
                            statistics.median(grid[size]["ratios"]), 3
                        ),
                        "pairs": len(grid[size]["ratios"]),
                    }
                    for size in COSCHEDULE_GRID
                },
                "arena": world_arena_stats(),
            },
        },
    }
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")

    print(
        f"\nkernel: zero-delay {micro['zero_delay_fast_events_per_sec']:,.0f}"
        f" ev/s fast vs {micro['zero_delay_legacy_events_per_sec']:,.0f}"
        f" legacy; timed {micro['timed_fast_events_per_sec']:,.0f} vs "
        f"{micro['timed_legacy_events_per_sec']:,.0f}; mass-timer "
        f"{micro['mass_timer_fast_events_per_sec']:,.0f} vs "
        f"{micro['mass_timer_legacy_events_per_sec']:,.0f}\n"
        f"parity: 4-combo trace digest "
        f"{report['parity']['trace_digest']}\n"
        f"campaign ({MISSIONS} missions): legacy {legacy_solo:.1f}/s, "
        f"fresh {fresh_solo:.1f}/s, reuse {reuse_solo:.1f}/s solo; "
        f"reuse serial {reuse_serial:.1f}/s vs coscheduled "
        + ", ".join(
            f"co={s} {grid[s]['mps']:.1f}/s "
            f"(best pair {max(grid[s]['ratios']):.2f}x)"
            for s in COSCHEDULE_GRID
        )
        + f" -> {speedup:.2f}x vs PR3 baseline "
        f"({PR3_BASELINE_MISSIONS_PER_SEC}/s)\n"
        f"wrote {BENCH_PATH.name}"
    )
