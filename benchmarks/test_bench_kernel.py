"""Benchmark: the kernel fast path and the in-process world co-scheduler.

Two cases, both written into ``BENCH_kernel.json`` (uploaded as a CI
artifact next to ``BENCH_runner.json``):

* **micro** — a zero-delay resume chain and a timed-event chain driven
  through ``Simulator`` with the fast path on and off, reporting
  events/sec for each lane (the ready deque vs the legacy single heap);
* **campaign** — seeded missions of the statistical fault-injection
  campaign, measured three ways: legacy kernel solo, fast kernel solo,
  and fast kernel with ``coschedule=8`` through the experiment runner —
  the configuration ``repro campaign --coschedule`` ships.  The co-
  scheduled result is asserted byte-identical to the solo run before any
  number is reported.

The campaign case carries a **soft regression guard**: if a previous
``BENCH_kernel.json`` exists, a >20% drop in co-scheduled missions/sec
prints a loud warning (never a failure — these are wall-clock numbers on
shared hardware).  The baseline constant is the PR 3 checkout running
the same sharded campaign end-to-end (``exp.run(spec, jobs=1)``, its
only mode), measured interleaved run-for-run against this tree on the
same host: best-of-8 gave 49.78 missions/sec.  The recorded
``speedup_vs_pr3_baseline`` is computed against that constant.

Numbers are best-of-``BENCH_KERNEL_REPS`` (default 3) over
``BENCH_KERNEL_MISSIONS`` missions (default 64) — override via the
environment for longer, steadier runs.
"""

import json
import os
import time
from pathlib import Path

from conftest import run_once

from repro import exp
from repro.eval import campaign
from repro.kernel import Simulator, run_solo

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"

#: Missions/sec of the PR 3 checkout running the sharded campaign
#: end-to-end through its own ``exp.run(spec, jobs=1)`` (single heap, no
#: co-scheduling), measured interleaved against this tree on the same
#: host — the denominator of the recorded speedup.
PR3_BASELINE_MISSIONS_PER_SEC = 49.78

#: Soft guard: warn when co-scheduled throughput drops below this
#: fraction of the previously recorded number.
SOFT_GUARD_FRACTION = 0.8

MICRO_EVENTS = 50_000
MISSIONS = int(os.environ.get("BENCH_KERNEL_MISSIONS", "64"))
REQUESTS = 30
COSCHEDULE = 8
REPS = max(1, int(os.environ.get("BENCH_KERNEL_REPS", "3")))


def _zero_delay_chain(fast_path):
    """Events/sec through a self-reposting zero-delay callback chain."""
    sim = Simulator(fast_path=fast_path)
    remaining = [MICRO_EVENTS]

    def tick():
        remaining[0] -= 1
        if remaining[0] > 0:
            sim.post(tick)

    sim.post(tick)
    started = time.perf_counter()
    sim.run()
    return MICRO_EVENTS / max(time.perf_counter() - started, 1e-9)


def _timed_chain(fast_path):
    """Events/sec through a self-rescheduling timed callback chain."""
    sim = Simulator(fast_path=fast_path)
    remaining = [MICRO_EVENTS]

    def tick():
        remaining[0] -= 1
        if remaining[0] > 0:
            sim.call_later(1.0, tick)

    sim.call_later(1.0, tick)
    started = time.perf_counter()
    sim.run()
    return MICRO_EVENTS / max(time.perf_counter() - started, 1e-9)


def _campaign_spec():
    return campaign.sharded_spec(
        missions=MISSIONS, base_seed=5000, requests=REQUESTS,
        cell_size=max(1, MISSIONS // 4),
    )


def _solo_missions_per_sec():
    started = time.perf_counter()
    for seed in range(5000, 5000 + MISSIONS):
        run_solo(campaign.mission_task(seed, requests=REQUESTS))
    return MISSIONS / max(time.perf_counter() - started, 1e-9)


def _coscheduled_run():
    spec = _campaign_spec()
    started = time.perf_counter()
    result = exp.run(spec, jobs=1, coschedule=COSCHEDULE)
    return result, MISSIONS / max(time.perf_counter() - started, 1e-9)


def _best(fn, reps=REPS):
    return max(fn() for _ in range(reps))


def _soft_guard(current):
    """Warn (never fail) when throughput regressed >20% vs the record."""
    if not BENCH_PATH.exists():
        return
    try:
        previous = json.loads(BENCH_PATH.read_text())
        recorded = previous["campaign"]["fast_coscheduled_missions_per_sec"]
    except (ValueError, KeyError, TypeError):
        return
    if current < SOFT_GUARD_FRACTION * recorded:
        print(
            f"\nWARNING: kernel throughput regressed "
            f"{100 * (1 - current / recorded):.0f}%: "
            f"{current:.1f} missions/s vs recorded {recorded:.1f} "
            f"(soft guard at {SOFT_GUARD_FRACTION:.0%}; wall-clock "
            f"numbers on shared hardware — investigate before trusting)"
        )


def test_bench_kernel_fast_path_and_coschedule(benchmark):
    # -- micro: the two lanes, fast vs legacy ------------------------------
    micro = {
        "zero_delay_fast_events_per_sec": _best(
            lambda: _zero_delay_chain(True)),
        "zero_delay_legacy_events_per_sec": _best(
            lambda: _zero_delay_chain(False)),
        "timed_fast_events_per_sec": _best(lambda: _timed_chain(True)),
        "timed_legacy_events_per_sec": _best(lambda: _timed_chain(False)),
    }

    # -- campaign: legacy solo / fast solo / fast + coschedule -------------
    # The three configurations are interleaved within each round (not
    # phase-by-phase): shared-hardware load drifts on a minutes scale,
    # large enough to invert phase-sequential comparisons, so only
    # back-to-back runs compare like with like.  Best-of-REPS each.
    assert Simulator.DEFAULT_FAST_PATH  # the shipped default

    def _legacy_solo_missions_per_sec():
        Simulator.DEFAULT_FAST_PATH = False
        try:
            return _solo_missions_per_sec()
        finally:
            Simulator.DEFAULT_FAST_PATH = True

    reference = exp.run(_campaign_spec(), jobs=1)
    legacy_solo = _legacy_solo_missions_per_sec()
    fast_solo = _solo_missions_per_sec()
    coscheduled, coscheduled_mps = run_once(benchmark, _coscheduled_run)
    for _ in range(REPS - 1):
        legacy_solo = max(legacy_solo, _legacy_solo_missions_per_sec())
        fast_solo = max(fast_solo, _solo_missions_per_sec())
        _result, mps = _coscheduled_run()
        coscheduled_mps = max(coscheduled_mps, mps)

    # co-scheduling is pure execution strategy: identical bytes first
    assert json.dumps(coscheduled.results, sort_keys=True) == json.dumps(
        reference.results, sort_keys=True
    )

    _soft_guard(coscheduled_mps)
    speedup = coscheduled_mps / PR3_BASELINE_MISSIONS_PER_SEC
    report = {
        "generated_by": "benchmarks/test_bench_kernel.py",
        "note": (
            f"best-of-{REPS}; missions/sec over {MISSIONS} seeded campaign "
            "missions, single process; micro numbers are kernel events/sec"
        ),
        "micro": {k: round(v, 1) for k, v in micro.items()},
        "campaign": {
            "missions": MISSIONS,
            "requests": REQUESTS,
            "coschedule": COSCHEDULE,
            "pr3_baseline_missions_per_sec": PR3_BASELINE_MISSIONS_PER_SEC,
            "legacy_solo_missions_per_sec": round(legacy_solo, 2),
            "fast_solo_missions_per_sec": round(fast_solo, 2),
            "fast_coscheduled_missions_per_sec": round(coscheduled_mps, 2),
            "speedup_vs_pr3_baseline": round(speedup, 2),
        },
    }
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")

    print(
        f"\nkernel: zero-delay {micro['zero_delay_fast_events_per_sec']:,.0f}"
        f" ev/s fast vs {micro['zero_delay_legacy_events_per_sec']:,.0f}"
        f" legacy; timed {micro['timed_fast_events_per_sec']:,.0f} vs "
        f"{micro['timed_legacy_events_per_sec']:,.0f}\n"
        f"campaign ({MISSIONS} missions): legacy {legacy_solo:.1f}/s, "
        f"fast {fast_solo:.1f}/s, fast+coschedule={COSCHEDULE} "
        f"{coscheduled_mps:.1f}/s -> {speedup:.2f}x vs PR3 baseline "
        f"({PR3_BASELINE_MISSIONS_PER_SEC}/s)\n"
        f"wrote {BENCH_PATH.name}"
    )
