"""Ablation: per-FTM request latency (the runtime price of each mechanism).

Not a paper artifact — the paper measures adaptation, not request
latency — but it quantifies the R-dimension trade-offs Table 1 states
qualitatively: TR's redundant execution roughly doubles service time,
A&Duplex adds only the assertion check on the fault-free path, and the
duplex strategies differ by their synchronisation pattern, not by
latency.
"""

from conftest import run_once

from repro.app.workloads import constant
from repro.ftm import FTM_NAMES, Client, deploy_ftm_pair
from repro.kernel import World

REQUESTS = 20


def _latency_for(ftm: str, seed: int = 7000) -> float:
    world = World(seed=seed)
    world.add_nodes(["alpha", "beta", "client"])

    def do():
        pair = yield from deploy_ftm_pair(
            world, ftm, ["alpha", "beta"], assertion="counter-range"
        )
        client = Client(
            world, world.cluster.node("client"), "c1", pair.node_names()
        )
        result = yield from constant(world, client, count=REQUESTS, period_ms=50.0)
        return result.mean_latency_ms

    return world.run_process(do(), name="latency")


def test_bench_latency(benchmark):
    def measure():
        return {ftm: _latency_for(ftm) for ftm in FTM_NAMES}

    latencies = run_once(benchmark, measure)
    print("\nmean request latency by FTM (fault-free, ms):")
    for ftm, latency in latencies.items():
        print(f"  {ftm:8s} {latency:6.2f}")

    # TR variants pay the redundant execution (~2x the processing time)
    assert latencies["pbr+tr"] > latencies["pbr"] * 1.5
    assert latencies["lfr+tr"] > latencies["lfr"] * 1.5
    # assertion checking on the fault-free path is nearly free
    assert latencies["a+pbr"] < latencies["pbr"] * 1.3
    # passive and active replication have comparable fault-free latency
    assert abs(latencies["pbr"] - latencies["lfr"]) < latencies["pbr"] * 0.5
