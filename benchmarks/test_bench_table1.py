"""Benchmark: regenerate Table 1 — (FT, A, R) parameters of the FTMs."""

from conftest import run_once

from repro.eval import table1


def test_bench_table1(benchmark):
    data = run_once(benchmark, table1.generate)
    print("\n" + table1.render(data))
    result = table1.fidelity(data)
    print(f"fidelity: {result['matches']}/{result['total']} cells match the paper")
    for row, column, expected, actual in result["mismatches"]:
        print(f"  documented divergence: {row}/{column}: paper={expected} ours={actual}")
    # 30/32 cells must match; the two divergences are documented in
    # EXPERIMENTS.md (A&Duplex variant choice; LFR CPU follows the paper's
    # text, which contradicts its own table)
    assert result["matches"] >= 30
    assert len(result["mismatches"]) <= 2
