"""Benchmark: regenerate Figure 2 — the FTM transition graph."""

from conftest import run_once

from repro.eval import figure2


def test_bench_figure2(benchmark):
    data = run_once(benchmark, figure2.generate)
    print("\n" + figure2.render(data))
    # every Figure 2 edge is realisable by at least one scenario event
    assert figure2.coverage(data) == []
    # and the graph has exactly the paper's nodes
    assert set(data["graph"]) == {"pbr", "lfr", "pbr+tr", "lfr+tr", "a+duplex"}
