"""Benchmark: regenerate Table 3 — deployment vs transition times.

36 full deployments + 90 differential transitions of the simulated
two-replica platform (3 seeded runs per cell; the paper averaged 100 on
real hardware — raise ``RUNS`` for tighter averages).
"""

from conftest import run_once

from repro import exp
from repro.eval import table3
from repro.ftm import FTM_NAMES

RUNS = 3


def test_bench_table3(benchmark):
    result = run_once(benchmark, exp.run, table3.spec(runs=RUNS), jobs=1)
    data = table3.from_results(result.results)
    print("\n" + table3.render(data))

    problems = table3.shape_checks(data)
    assert problems == [], problems

    # headline numbers stay in the paper's band (simulator calibration):
    for ftm in FTM_NAMES:
        assert 3_300 <= data["deployment"][ftm] <= 4_300
    for (source, target), value in data["transitions"].items():
        if source != target:
            assert 600 <= value <= 1_500, (source, target, value)

    # the paper's key ratio: transitions are ~3-5x faster than deployment
    mean_deploy = sum(data["deployment"].values()) / len(data["deployment"])
    off_diagonal = [v for (s, t), v in data["transitions"].items() if s != t]
    mean_transition = sum(off_diagonal) / len(off_diagonal)
    ratio = mean_deploy / mean_transition
    print(f"\nmean deployment / mean transition = {ratio:.2f}x (paper ~3.8x)")
    assert 2.5 <= ratio <= 6.0
