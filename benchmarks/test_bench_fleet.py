"""Benchmark: fleet-scale campaign throughput across executor backends.

Writes ``BENCH_fleet.json`` (uploaded as a CI artifact next to the other
``BENCH_*.json`` reports) with fleet missions/sec for the serial,
co-scheduled, and persistent local-pool configurations.  A fleet mission
is much heavier than a single-pair campaign mission — one random
multi-host topology, several placed FTM pairs, open-loop load, churn,
and the fleet Resilience Manager's periodic shared-R sweeps — so the
numbers are not comparable to ``BENCH_distributed.json``; the report
carries the fleet shape so the trajectory reads correctly.

Every configuration's results are asserted byte-identical to the serial
reference before any number is reported (the per-mission trace digests
ride inside the cell payloads, so equality also certifies event-order
identity), keeping the backends-are-pure-execution-strategy contract.
"""

import json
import os
import sys
import time
from pathlib import Path

from conftest import run_once

from repro import exp
from repro.eval import fleet_campaign

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"

HOSTS = int(os.environ.get("BENCH_FLEET_HOSTS", "12"))
APPS = int(os.environ.get("BENCH_FLEET_APPS", "4"))
MISSIONS = int(os.environ.get("BENCH_FLEET_MISSIONS", "4"))
REPS = max(1, int(os.environ.get("BENCH_FLEET_REPS", "2")))
COSCHEDULE = 4


def _spec():
    return fleet_campaign.spec(
        missions=MISSIONS, base_seed=9000, hosts=HOSTS, apps=APPS,
    )


def _dump(result):
    return json.dumps(result.results, sort_keys=True)


def _timed_run(**kwargs):
    spec = _spec()
    missions = spec.unit_count
    started = time.perf_counter()
    result = exp.run(spec, **kwargs)
    return result, missions / max(time.perf_counter() - started, 1e-9)


def test_bench_fleet_campaign(benchmark):
    cpu_count = os.cpu_count() or 1
    grid = [
        ("serial jobs=1 coschedule=1", dict(jobs=1, backend="serial")),
        ("serial jobs=1 coschedule=4",
         dict(jobs=1, backend="serial", coschedule=COSCHEDULE)),
        ("local jobs=2 coschedule=4",
         dict(jobs=2, backend="local", coschedule=COSCHEDULE)),
    ]
    try:
        reference = exp.run(_spec(), jobs=1, backend="serial")

        best = {scenario: 0.0 for scenario, _ in grid}
        first_result, first_mps = run_once(
            benchmark, lambda: _timed_run(**dict(grid[0][1]))
        )
        assert _dump(first_result) == _dump(reference)
        best[grid[0][0]] = first_mps
        for rep in range(REPS):
            for scenario, kwargs in grid:
                if rep == 0 and scenario == grid[0][0]:
                    continue  # already measured via the benchmark fixture
                result, mps = _timed_run(**dict(kwargs))
                assert _dump(result) == _dump(reference), scenario
                best[scenario] = max(best[scenario], mps)
    finally:
        exp.shutdown_local_pool()

    baseline = best["serial jobs=1 coschedule=1"]
    rows = [
        {
            "scenario": scenario,
            "missions_per_sec": round(mps, 2),
            "speedup": round(mps / baseline, 2),
        }
        for scenario, mps in best.items()
    ]
    data = fleet_campaign.from_results(reference.results)

    report = {
        "generated_by": "benchmarks/test_bench_fleet.py",
        "note": (
            f"best-of-{REPS} interleaved; fleet missions/sec over "
            f"{HOSTS}-host x {APPS}-app missions (placement x churn "
            "grid); byte-identity of every configuration asserted "
            "against the serial reference before reporting"
        ),
        "host": {"cpu_count": cpu_count, "platform": sys.platform},
        "fleet": {"hosts": HOSTS, "apps": APPS,
                  "missions": data["missions"]},
        "observed": {
            "requests_ok": data["ok"],
            "requests_sent": data["sent"],
            "transitions": data["transitions"],
            "contention_decisions": data["contention_decisions"],
            "node_downs": data["node_downs"],
        },
        "baseline_missions_per_sec": round(baseline, 2),
        "rows": rows,
    }
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")

    lines = [
        f"{row['scenario']:<34s} {row['missions_per_sec']:>8.1f}/s "
        f"({row['speedup']:.2f}x)"
        for row in rows
    ]
    print(
        "\nfleet grid (missions/s, byte-identical):\n  "
        + "\n  ".join(lines)
        + f"\nfleet shape: {HOSTS} hosts x {APPS} apps, "
        f"{data['transitions']} transitions "
        f"({data['contention_decisions']} contention-triggered), "
        f"{data['node_downs']} churn outages"
        f"\nwrote {BENCH_PATH.name}"
    )

    problems = fleet_campaign.shape_checks(data)
    assert not problems, problems
