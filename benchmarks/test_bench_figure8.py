"""Benchmark: regenerate Figure 8 — the transition-scenario graph."""

from conftest import run_once

from repro.eval import figure8
from repro.core import verify_no_oscillation


def test_bench_figure8(benchmark):
    data = run_once(benchmark, figure8.generate)
    print("\n" + figure8.render(data))
    # every edge the paper's figure shows is derived by the model
    assert figure8.fidelity(data) == []
    # and the oscillation-safety property holds on the whole graph
    assert verify_no_oscillation() == []
