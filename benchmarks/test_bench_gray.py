"""Benchmark: gray-failure detection latency and availability deltas.

Writes ``BENCH_gray.json`` (uploaded as a CI artifact next to the other
``BENCH_*.json`` reports) for the PBR→LFR limping-primary scenario: the
primary's disk silently runs 8× slower while the node stays up.  PBR
checkpoints every request through that disk, so the reactive baseline
(no latency probe — it can only ever react to crashes, which never come)
breaches the 10 ms SLO for the entire limp.  The proactive stack detects
the limp from the p99 latency probe in ~250 ms and escapes to LFR —
which never touches the disk — so its unavailability is bounded by the
detection + transition window.  The report asserts the headline claim
before writing it: proactive unavailability is *strictly* lower than
reactive in every mission, with zero crash suspicions (slow ≠ dead) and
zero lost requests in both modes.

The gray-matrix experiment itself is also timed across executor
configurations, with every configuration's results asserted
byte-identical to the serial reference first (per-mission trace digests
ride inside the cells, so equality certifies event-order identity).
"""

import json
import os
import sys
import time
from pathlib import Path

from conftest import run_once

from repro import exp
from repro.eval import gray
from repro.eval.gray import run_gray_mission
from repro.eval.stats import wilson_interval

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_gray.json"

MISSIONS = max(2, int(os.environ.get("BENCH_GRAY_MISSIONS", "3")))
REPS = max(1, int(os.environ.get("BENCH_GRAY_REPS", "2")))
COSCHEDULE = 4

#: The limping-primary scenario: PBR checkpoints through a disk that
#: silently runs 8x slower; a 10 ms SLO sits between healthy PBR (~8 ms)
#: and limped PBR (~15.5 ms) latencies.
SCENARIO = dict(ftm="pbr", resource="disk", factor=8.0, slo_ms=10.0)


def _spec():
    return gray.spec(missions=MISSIONS, base_seed=41_000)


def _dump(result):
    return json.dumps(result.results, sort_keys=True)


def _timed_run(**kwargs):
    spec = _spec()
    missions = spec.unit_count
    started = time.perf_counter()
    result = exp.run(spec, **kwargs)
    return result, missions / max(time.perf_counter() - started, 1e-9)


def _availability_delta():
    """Run the limping-primary scenario proactive vs reactive."""
    seeds = [41_000 + 211 * m for m in range(MISSIONS)]
    reactive = [run_gray_mission(s, proactive=False, **SCENARIO)
                for s in seeds]
    proactive = [run_gray_mission(s, proactive=True, **SCENARIO)
                 for s in seeds]
    return reactive, proactive


def test_bench_gray(benchmark):
    cpu_count = os.cpu_count() or 1
    grid = [
        ("serial jobs=1 coschedule=1", dict(jobs=1, backend="serial")),
        ("serial jobs=1 coschedule=4",
         dict(jobs=1, backend="serial", coschedule=COSCHEDULE)),
        ("local jobs=2 coschedule=4",
         dict(jobs=2, backend="local", coschedule=COSCHEDULE)),
    ]
    try:
        reference = exp.run(_spec(), jobs=1, backend="serial")

        best = {scenario: 0.0 for scenario, _ in grid}
        first_result, first_mps = run_once(
            benchmark, lambda: _timed_run(**dict(grid[0][1]))
        )
        assert _dump(first_result) == _dump(reference)
        best[grid[0][0]] = first_mps
        for rep in range(REPS):
            for scenario, kwargs in grid:
                if rep == 0 and scenario == grid[0][0]:
                    continue  # already measured via the benchmark fixture
                result, mps = _timed_run(**dict(kwargs))
                assert _dump(result) == _dump(reference), scenario
                best[scenario] = max(best[scenario], mps)

        reactive, proactive = _availability_delta()
    finally:
        exp.shutdown_local_pool()

    data = gray.from_results(reference.results)
    problems = gray.shape_checks(data)
    assert not problems, problems

    # the headline claims, asserted before anything is written
    for outcome in reactive + proactive:
        assert outcome.peer_suspected == 0, "limping node looked dead"
        assert outcome.ok == outcome.sent, "lost requests under a limp"
    for before, after in zip(reactive, proactive):
        assert after.unavailability < before.unavailability, (
            f"seed {before.seed}: proactive must beat reactive "
            f"({after.unavailability} vs {before.unavailability})"
        )
        assert after.detected and after.transitioned

    detection = [o.detection_latency_ms for o in proactive]
    mean_detection = sum(detection) / len(detection)
    reactive_unavail = (sum(o.slo_misses for o in reactive)
                        / sum(o.post_requests for o in reactive))
    proactive_unavail = (sum(o.slo_misses for o in proactive)
                         / sum(o.post_requests for o in proactive))
    detect_ci = wilson_interval(
        sum(1 for o in proactive if o.detected), len(proactive)
    )

    baseline = best["serial jobs=1 coschedule=1"]
    rows = [
        {"scenario": "pbr->lfr limping disk x8: reactive unavailability",
         "value": round(reactive_unavail, 4), "unit": "SLO-miss fraction"},
        {"scenario": "pbr->lfr limping disk x8: proactive unavailability",
         "value": round(proactive_unavail, 4), "unit": "SLO-miss fraction"},
        {"scenario": "availability delta (reactive - proactive)",
         "value": round(reactive_unavail - proactive_unavail, 4),
         "unit": "SLO-miss fraction"},
        {"scenario": "mean limp detection latency",
         "value": round(mean_detection, 1), "unit": "ms"},
        {"scenario": "gray matrix serial throughput",
         "value": round(baseline, 2), "unit": "missions/s"},
    ]
    report = {
        "generated_by": "benchmarks/test_bench_gray.py",
        "note": (
            f"best-of-{REPS} interleaved; gray missions are 200-request "
            "limplock runs (primary limps mid-mission, never dies); "
            "byte-identity of every configuration asserted against the "
            "serial reference before reporting"
        ),
        "host": {"cpu_count": cpu_count, "platform": sys.platform},
        "scenario": dict(SCENARIO, missions=MISSIONS),
        "observed": {
            "requests_ok": data["ok"],
            "requests_sent": data["sent"],
            "limps_detected": data["detected"],
            "proactive_transitions": data["transitioned"],
            "crash_suspicions": data["peer_suspected"],
            "detection_rate_ci95": [round(b, 4) for b in detect_ci],
            "mean_detection_latency_ms": round(mean_detection, 1),
        },
        "grid": {
            scenario: round(mps, 2) for scenario, mps in best.items()
        },
        "rows": rows,
    }
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")

    lines = [
        f"{row['scenario']:<52s} {row['value']:>10} {row['unit']}"
        for row in rows
    ]
    print(
        "\ngray-failure benchmark (byte-identical across backends):\n  "
        + "\n  ".join(lines)
        + f"\nwrote {BENCH_PATH.name}"
    )
