"""Benchmark: the experiment runner — parallel fan-out and batched dispatch.

Two cases:

* a reduced Table 3 spec (the heaviest artifact) executed serially and
  over a process pool sized to the machine, asserting the two result
  sets are byte-identical (the runner's core determinism guarantee) and
  printing the measured speedup;
* a campaign-shaped fleet of tiny trials (>= 2000 units) dispatched
  unbatched (one unit per worker task) vs batched (the default
  grouping), reporting units/sec for jobs in {1, N} — the number that
  shows what per-task dispatch overhead costs when trials are cheap.

On a single-core container the pool can only break even; on the
multi-core runners the evaluation targets, the full regeneration is
embarrassingly parallel and batching keeps tiny-trial campaigns from
drowning in fork/pickle overhead.
"""

import json
import os
import time

from conftest import run_once

from repro import exp
from repro.eval import table3

RUNS = 6
TINY_UNITS = 2048


def tiny_trial(seed, params):
    """A deliberately cheap trial: dispatch overhead dominates."""
    return {"seed": seed, "value": (seed * 2654435761) % 1000003}


def _tiny_spec():
    # 64 cells x 32 seeds = 2048 units, campaign-shard shaped
    trials = tuple(
        exp.Trial(key=f"cell-{i:03d}", params={"cell": i},
                  seeds=exp.derive_seeds(0, f"cell-{i:03d}", 32))
        for i in range(TINY_UNITS // 32)
    )
    return exp.ExperimentSpec(name="tiny-fleet", trial=tiny_trial,
                              trials=trials)


def _units_per_sec(spec, **kwargs):
    started = time.perf_counter()
    result = exp.run(spec, **kwargs)
    elapsed = max(time.perf_counter() - started, 1e-9)
    return result, spec.unit_count / elapsed


def test_bench_exp_runner_parallel(benchmark):
    spec = table3.spec(runs=RUNS)
    serial = exp.run(spec, jobs=1)

    jobs = os.cpu_count() or 1
    parallel = run_once(benchmark, exp.run, spec, jobs=jobs)

    assert json.dumps(parallel.results, sort_keys=True) == json.dumps(
        serial.results, sort_keys=True
    )
    speedup = serial.elapsed_s / max(parallel.elapsed_s, 1e-9)
    print(
        f"\nexp runner: {spec.unit_count} trials, serial {serial.elapsed_s:.2f}s, "
        f"jobs={jobs} {parallel.elapsed_s:.2f}s -> speedup {speedup:.2f}x"
    )


def test_bench_exp_runner_batched_dispatch(benchmark):
    spec = _tiny_spec()
    assert spec.unit_count >= 2000
    jobs = os.cpu_count() or 1

    serial, serial_ups = _units_per_sec(spec, jobs=1)
    unbatched, unbatched_ups = _units_per_sec(spec, jobs=jobs, batch=1)
    batched = run_once(benchmark, exp.run, spec, jobs=jobs)
    batched_ups = spec.unit_count / max(batched.elapsed_s, 1e-9)

    # batching is a pure wall-clock knob: results stay byte-identical
    reference = json.dumps(serial.results, sort_keys=True)
    assert json.dumps(unbatched.results, sort_keys=True) == reference
    assert json.dumps(batched.results, sort_keys=True) == reference

    batch_size = exp.default_batch(spec.unit_count, jobs)
    print(
        f"\nbatched dispatch: {spec.unit_count} tiny trials\n"
        f"  jobs=1            {serial_ups:10.0f} units/s\n"
        f"  jobs={jobs} batch=1   {unbatched_ups:10.0f} units/s\n"
        f"  jobs={jobs} batch={batch_size:<3d} {batched_ups:10.0f} units/s "
        f"({batched_ups / max(unbatched_ups, 1e-9):.2f}x vs unbatched)"
    )
