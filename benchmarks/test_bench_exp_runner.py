"""Benchmark: the experiment runner — parallel fan-out vs serial.

Times a reduced Table 3 spec (the heaviest artifact) executed serially
and over a process pool sized to the machine, asserts the two result
sets are byte-identical (the runner's core determinism guarantee), and
prints the measured speedup.  On a single-core container the pool can
only break even; on the multi-core runners the evaluation targets, the
720-trial full regeneration is embarrassingly parallel.
"""

import json
import os

from conftest import run_once

from repro import exp
from repro.eval import table3

RUNS = 6


def test_bench_exp_runner_parallel(benchmark):
    spec = table3.spec(runs=RUNS)
    serial = exp.run(spec, jobs=1)

    jobs = os.cpu_count() or 1
    parallel = run_once(benchmark, exp.run, spec, jobs=jobs)

    assert json.dumps(parallel.results, sort_keys=True) == json.dumps(
        serial.results, sort_keys=True
    )
    speedup = serial.elapsed_s / max(parallel.elapsed_s, 1e-9)
    print(
        f"\nexp runner: {spec.unit_count} trials, serial {serial.elapsed_s:.2f}s, "
        f"jobs={jobs} {parallel.elapsed_s:.2f}s -> speedup {speedup:.2f}x"
    )
