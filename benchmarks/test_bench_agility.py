"""Benchmark: Sec. 6.2 — agile vs preprogrammed adaptation."""

from conftest import run_once

from repro.eval import agility


def test_bench_agility(benchmark):
    data = run_once(benchmark, agility.generate)
    print("\n" + agility.render(data))
    assert agility.shape_checks(data) == []

    # the paper's qualitative conclusions, as assertions:
    agile = data["agile"]
    pre = data["preprogrammed"]
    # 1. agility costs switch latency (within the related-work spread the
    #    paper discusses: preprogrammed 4.5-390 ms, agile ~1 s)
    assert pre["switch_ms"] < 400
    assert 300 <= agile["switch_ms"] <= 3000
    # 2. preprogramming costs resident dead code
    assert pre["resident_variants"] > agile["resident_variants"]
    # 3. only the agile system integrates an FTM unknown at design time
    assert agile["field_update_possible"]
    assert not pre["field_update_possible"]
